//! Networked front door integration: the full server op surface over
//! real loopback sockets, and the transport's behaviour under a hostile
//! peer — truncated frames, lying length prefixes, corrupted checksums,
//! mid-frame disconnects, mismatched handshakes. The invariant
//! throughout: a protocol-level failure is *answered*, a transport-level
//! violation closes *that connection* — and the server itself never
//! panics, never hangs, and keeps serving everyone else.

use fuzzy_id::net::envelope;
use fuzzy_id::net::frame::{read_frame, write_frame, FRAME_HEADER};
use fuzzy_id::net::handshake::{self, client_handshake, HandshakeStatus, NET_VERSION};
use fuzzy_id::net::{Client, ErrorCode, NetConfig, NetError, NetServer, DEFAULT_MAX_FRAME};
use fuzzy_id::protocol::scheduler::{ScheduledServer, SchedulerConfig};
use fuzzy_id::protocol::wire::Message;
use fuzzy_id::protocol::{BiometricDevice, IdentOutcome, SystemParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 16;

/// A served stack: params, a scheduler with the given admission queue,
/// and a front door on an ephemeral loopback port.
fn stack(
    queue_capacity: usize,
    config: NetConfig,
    seed: u64,
) -> (
    SystemParams,
    Arc<ScheduledServer>,
    NetServer,
    BiometricDevice,
    StdRng,
) {
    let params = SystemParams::insecure_test_defaults();
    let scheduler = Arc::new(ScheduledServer::scan(
        params.clone(),
        1,
        SchedulerConfig {
            queue_capacity,
            rng_seed: seed,
            ..SchedulerConfig::default()
        },
    ));
    let server = NetServer::spawn(Arc::clone(&scheduler), "127.0.0.1:0", config)
        .expect("bind ephemeral front door");
    let device = BiometricDevice::new(params.clone());
    let rng = StdRng::seed_from_u64(seed);
    (params, scheduler, server, device, rng)
}

/// Connects a raw socket and completes the handshake — the launch pad
/// for every hostile-bytes scenario below.
fn handshaken(server: &NetServer, params: &SystemParams) -> TcpStream {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    client_handshake(&mut stream, &params.fingerprint(), DEFAULT_MAX_FRAME).expect("handshake");
    stream
}

/// Asserts the server closed our connection: the next frame read ends
/// in `ConnectionClosed` (clean EOF) or an IO error (RST) — never data,
/// never a hang.
fn assert_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match read_frame(stream, DEFAULT_MAX_FRAME) {
        Ok(payload) => panic!(
            "expected closed connection, got a {}-byte frame",
            payload.len()
        ),
        Err(NetError::ConnectionClosed | NetError::Io(_) | NetError::BadFrame(_)) => {}
        Err(other) => panic!("expected closed connection, got {other}"),
    }
}

/// The server stays healthy after an abuse scenario: a fresh client can
/// still complete a full identify round trip.
fn assert_still_serving(server: &NetServer, params: &SystemParams) {
    let mut client = Client::connect(server.local_addr(), params).expect("fresh connect");
    let mut rng = StdRng::seed_from_u64(0xA11A);
    let device = BiometricDevice::new(params.clone());
    let bio = params.sketch().line().random_vector(DIM, &mut rng);
    let probe = device.probe_sketch(&bio, &mut rng).expect("probe");
    // Nobody enrolled with this biometric: NO_MATCH is the healthy answer.
    match client.identify(probe) {
        Err(NetError::Remote(e)) if e.code == ErrorCode::NoMatch => {}
        other => panic!("expected NO_MATCH from a healthy server, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Full op surface, end to end.
// ---------------------------------------------------------------------

#[test]
fn every_server_op_roundtrips_over_the_wire() {
    let (params, _sched, server, device, mut rng) = stack(1024, NetConfig::default(), 0xE2E);
    let mut client = Client::connect(server.local_addr(), &params).unwrap();

    // enroll + identify + finish: the paper's Fig. 3 flow, over TCP.
    let alice_bio = params.sketch().line().random_vector(DIM, &mut rng);
    let bob_bio = params.sketch().line().random_vector(DIM, &mut rng);
    client
        .enroll(device.enroll("alice", &alice_bio, &mut rng).unwrap())
        .unwrap();
    client
        .enroll(device.enroll("bob", &bob_bio, &mut rng).unwrap())
        .unwrap();

    let reading: Vec<i64> = alice_bio.iter().map(|&x| x + 3).collect();
    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
    let challenge = client.identify(probe.clone()).unwrap();
    let response = device.respond(&reading, &challenge, &mut rng).unwrap();
    let outcome = client.finish_identification(&response).unwrap();
    assert_eq!(outcome.identity(), Some("alice"));

    // enroll_unique: a duplicate biometric is refused with the typed code.
    let dup = device.enroll("alice-again", &alice_bio, &mut rng).unwrap();
    match client.enroll_unique(dup) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::DuplicateBiometric),
        other => panic!("expected DUPLICATE_BIOMETRIC, got {other:?}"),
    }

    // authenticate_claimed: right and wrong claimants.
    assert!(client.authenticate_claimed("alice", probe.clone()).unwrap());
    assert!(!client.authenticate_claimed("bob", probe.clone()).unwrap());
    match client.authenticate_claimed("nobody", probe.clone()) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownUser),
        other => panic!("expected UNKNOWN_USER, got {other:?}"),
    }

    // check_local_uniqueness: alice's probe collides with alice, not bob.
    assert!(!client
        .check_local_uniqueness(probe.clone(), vec!["alice".into()])
        .unwrap());
    assert!(client
        .check_local_uniqueness(probe.clone(), vec!["bob".into()])
        .unwrap());

    // reset: exactly one match resolves to the user id.
    assert_eq!(client.reset(probe.clone()).unwrap(), "alice");

    // identify_batch: matches and misses position-aligned in one frame.
    let stranger = params.sketch().line().random_vector(DIM, &mut rng);
    let miss = device.probe_sketch(&stranger, &mut rng).unwrap();
    let verdicts = client
        .identify_batch(vec![probe.clone(), miss.clone()])
        .unwrap();
    assert_eq!(verdicts.len(), 2);
    assert!(verdicts[0].is_ok());
    assert_eq!(verdicts[1].as_ref().unwrap_err().code, ErrorCode::NoMatch);

    // revoke: alice disappears; her probe stops matching; a second
    // revoke reports UNKNOWN_USER.
    client.revoke("alice").unwrap();
    match client.identify(probe) {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::NoMatch),
        other => panic!("expected NO_MATCH after revocation, got {other:?}"),
    }
    match client.revoke("alice") {
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownUser),
        other => panic!("expected UNKNOWN_USER, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn verification_failure_is_a_typed_wire_error() {
    let (params, _sched, server, device, mut rng) = stack(1024, NetConfig::default(), 0xBAD5);
    let mut client = Client::connect(server.local_addr(), &params).unwrap();
    let bio = params.sketch().line().random_vector(DIM, &mut rng);
    client
        .enroll(device.enroll("carol", &bio, &mut rng).unwrap())
        .unwrap();
    let probe = device.probe_sketch(&bio, &mut rng).unwrap();
    let challenge = client.identify(probe).unwrap();
    let mut response = device.respond(&bio, &challenge, &mut rng).unwrap();
    // Tamper with the signature: the server must answer BAD_SIGNATURE
    // (the paper's MITM case), not drop the connection.
    response.signature[0] ^= 0xFF;
    match client.finish_identification(&response) {
        Ok(IdentOutcome::Rejected) => {}
        Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::BadSignature),
        other => panic!("expected a rejection, got {other:?}"),
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// Backpressure on the wire.
// ---------------------------------------------------------------------

#[test]
fn overload_is_shed_as_wire_responses_not_dropped_connections() {
    // queue_capacity 1: with a long batch window and pipelined requests,
    // most submissions must shed.
    let params = SystemParams::insecure_test_defaults();
    let scheduler = Arc::new(ScheduledServer::scan(
        params.clone(),
        1,
        SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(50),
            queue_capacity: 1,
            workers: 1,
            rng_seed: 0x5EED,
        },
    ));
    let server =
        NetServer::spawn(Arc::clone(&scheduler), "127.0.0.1:0", NetConfig::default()).unwrap();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let bio = params.sketch().line().random_vector(DIM, &mut rng);
    let probe = device.probe_sketch(&bio, &mut rng).unwrap();

    // Pipeline a burst through a raw socket: no waiting between sends.
    let mut stream = handshaken(&server, &params);
    let mut read_half = stream.try_clone().unwrap();
    const BURST: u64 = 32;
    for id in 0..BURST {
        let req = envelope::encode_request(
            id,
            &Message::Identify {
                probe: probe.clone(),
            },
        );
        write_frame(&mut stream, &req, DEFAULT_MAX_FRAME).unwrap();
    }
    let mut shed = 0u64;
    let mut answered = 0u64;
    for expect in 0..BURST {
        let payload = read_frame(&mut read_half, DEFAULT_MAX_FRAME).unwrap();
        let (id, response) = envelope::decode_response(&payload).unwrap();
        assert_eq!(id, expect, "responses must arrive in request order");
        answered += 1;
        match response {
            // Admitted requests resolve NO_MATCH (nobody is enrolled);
            // everything the queue refused must say OVERLOADED.
            Err(e) if e.code == ErrorCode::NoMatch => {}
            Err(e) if e.code == ErrorCode::Overloaded => shed += 1,
            other => panic!("expected NO_MATCH or OVERLOADED, got {other:?}"),
        }
    }
    assert_eq!(answered, BURST, "every request gets a response");
    assert!(
        shed > 0,
        "a 1-deep admission queue under a {BURST}-request burst must shed"
    );
    assert!(server.metrics().shed() >= shed);

    // The connection is still usable after being shed on.
    let req = envelope::encode_request(BURST, &Message::Revoke { id: "ghost".into() });
    write_frame(&mut stream, &req, DEFAULT_MAX_FRAME).unwrap();
    let payload = read_frame(&mut read_half, DEFAULT_MAX_FRAME).unwrap();
    let (_, response) = envelope::decode_response(&payload).unwrap();
    assert_eq!(response.unwrap_err().code, ErrorCode::UnknownUser);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Hostile handshakes.
// ---------------------------------------------------------------------

#[test]
fn wrong_fingerprint_is_rejected_with_both_sides_values() {
    let (params, _sched, server, _device, _rng) = stack(64, NetConfig::default(), 0xF1);
    let ours = fuzzy_id::core::codec::Fingerprint([0xAB; 8]);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    match client_handshake(&mut stream, &ours, DEFAULT_MAX_FRAME) {
        Err(NetError::FingerprintMismatch { ours: o, theirs }) => {
            assert_eq!(o, ours);
            assert_eq!(theirs, params.fingerprint());
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    assert_still_serving(&server, &params);
}

#[test]
fn wrong_version_is_rejected() {
    let (params, _sched, server, _device, _rng) = stack(64, NetConfig::default(), 0xF2);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut hello = handshake::encode_hello(&params.fingerprint());
    hello[4..6].copy_from_slice(&(NET_VERSION + 1).to_be_bytes());
    write_frame(&mut stream, &hello, DEFAULT_MAX_FRAME).unwrap();
    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    let (version, status, _) = handshake::decode_reply(&reply).unwrap();
    assert_eq!(status, HandshakeStatus::VersionMismatch);
    assert_eq!(
        version, NET_VERSION,
        "the reply carries the server's version"
    );
    assert_closed(&mut stream);
    assert_still_serving(&server, &params);
}

#[test]
fn garbage_hello_closes_without_a_reply() {
    let (params, _sched, server, _device, _rng) = stack(64, NetConfig::default(), 0xF3);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, b"GET / HTTP/1.1\r\n\r\n", DEFAULT_MAX_FRAME).unwrap();
    assert_closed(&mut stream);
    assert_still_serving(&server, &params);
}

// ---------------------------------------------------------------------
// Hostile framing after a valid handshake.
// ---------------------------------------------------------------------

#[test]
fn truncated_frame_then_disconnect_kills_only_that_connection() {
    let (params, _sched, server, _device, _rng) = stack(64, NetConfig::default(), 0xF4);
    let mut stream = handshaken(&server, &params);
    // A frame header promising 100 bytes, followed by 10 and a FIN.
    let mut partial = Vec::new();
    partial.extend_from_slice(&100u32.to_be_bytes());
    partial.extend_from_slice(&0u32.to_be_bytes());
    partial.extend_from_slice(&[0u8; 10]);
    stream.write_all(&partial).unwrap();
    drop(stream);
    assert_still_serving(&server, &params);
}

#[test]
fn oversized_length_prefix_is_fatal_to_the_connection() {
    let (params, _sched, server, _device, _rng) = stack(64, NetConfig::default(), 0xF5);
    let mut stream = handshaken(&server, &params);
    let mut huge = Vec::new();
    huge.extend_from_slice(&u32::MAX.to_be_bytes());
    huge.extend_from_slice(&0u32.to_be_bytes());
    stream.write_all(&huge).unwrap();
    assert_closed(&mut stream);
    assert_still_serving(&server, &params);
}

#[test]
fn crc_corruption_is_fatal_to_the_connection() {
    let (params, _sched, server, _device, _rng) = stack(64, NetConfig::default(), 0xF6);
    let mut stream = handshaken(&server, &params);
    let mut framed = Vec::new();
    write_frame(
        &mut framed,
        &envelope::encode_request(0, &Message::Revoke { id: "x".into() }),
        DEFAULT_MAX_FRAME,
    )
    .unwrap();
    framed[FRAME_HEADER] ^= 0x01; // flip one payload bit; CRC now lies
    stream.write_all(&framed).unwrap();
    assert_closed(&mut stream);
    assert_still_serving(&server, &params);
}

#[test]
fn envelope_too_short_for_an_id_is_fatal() {
    let (params, _sched, server, _device, _rng) = stack(64, NetConfig::default(), 0xF7);
    let mut stream = handshaken(&server, &params);
    write_frame(&mut stream, &[1, 2, 3], DEFAULT_MAX_FRAME).unwrap();
    assert_closed(&mut stream);
    assert_still_serving(&server, &params);
}

#[test]
fn malformed_message_behind_a_valid_id_is_answered_not_fatal() {
    let (params, _sched, server, _device, _rng) = stack(64, NetConfig::default(), 0xF8);
    let mut stream = handshaken(&server, &params);
    let mut payload = 7u64.to_be_bytes().to_vec();
    payload.extend_from_slice(b"not a wire message at all");
    write_frame(&mut stream, &payload, DEFAULT_MAX_FRAME).unwrap();
    let response = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    let (id, verdict) = envelope::decode_response(&response).unwrap();
    assert_eq!(id, 7);
    assert_eq!(verdict.unwrap_err().code, ErrorCode::Malformed);

    // Same connection, response-only tag as a request: also answered.
    let outcome = envelope::encode_request(8, &Message::Outcome(IdentOutcome::Rejected));
    write_frame(&mut stream, &outcome, DEFAULT_MAX_FRAME).unwrap();
    let response = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    let (id, verdict) = envelope::decode_response(&response).unwrap();
    assert_eq!(id, 8);
    assert_eq!(verdict.unwrap_err().code, ErrorCode::Malformed);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Connection lifecycle.
// ---------------------------------------------------------------------

#[test]
fn idle_connections_are_reaped() {
    let (params, _sched, server, _device, _rng) = stack(
        64,
        NetConfig {
            idle_timeout: Duration::from_millis(100),
            poll_tick: Duration::from_millis(10),
            ..NetConfig::default()
        },
        0xF9,
    );
    let mut stream = handshaken(&server, &params);
    // Say nothing; the server must hang up on us.
    assert_closed(&mut stream);
    assert!(server.metrics().idle_closed() >= 1);
    // Active connections keep working longer than the idle window as
    // long as they keep talking.
    let mut client = Client::connect(server.local_addr(), &params).unwrap();
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(60));
        match client.revoke("nobody") {
            Err(NetError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownUser),
            other => panic!("expected UNKNOWN_USER, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_closes_connections_and_stops_accepting() {
    let (params, _sched, server, _device, _rng) = stack(
        64,
        NetConfig {
            poll_tick: Duration::from_millis(10),
            ..NetConfig::default()
        },
        0xFA,
    );
    let addr = server.local_addr();
    let mut stream = handshaken(&server, &params);
    server.shutdown(); // blocks until every server thread has exited
    assert_closed(&mut stream);
    // The listener is gone: a fresh connection cannot handshake.
    assert!(
        Client::connect(addr, &params).is_err(),
        "connected to a server that shut down"
    );
}
