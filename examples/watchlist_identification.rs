//! Watch-list identification — the paper's motivating scenario: a user
//! presents *only* a biometric (no identity claim) and the server must
//! find who it is among N enrolled users.
//!
//! Compares the proposed constant-cost protocol (Fig. 3) against the
//! normal O(N) approach (Fig. 2) on the same population.
//!
//! Run with: `cargo run --release --example watchlist_identification`

use fuzzy_id::protocol::{ProtocolRunner, SystemParams};
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let params = SystemParams::insecure_test_defaults();
    let mut runner = ProtocolRunner::new(params.clone());

    // Enroll a 25-person watch list.
    let users = 25;
    let dim = 1000;
    println!("enrolling {users} users (n = {dim} features each)…");
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(dim, &mut rng);
        runner.enroll_user(&format!("suspect-{u:02}"), &bio, &mut rng)?;
        bios.push(bio);
    }

    // An unknown person walks past the camera: it is suspect-17.
    let reading: Vec<i64> = bios[17]
        .iter()
        .map(|&x| x + rng.gen_range(-95i64..=95))
        .collect();

    // Proposed protocol: sketch match + ONE signature round.
    let start = Instant::now();
    let (outcome, stats) = runner.identify(&reading, &mut rng)?;
    println!(
        "proposed protocol:  identified {:?} in {:?} ({} Rep, {} signature ops)",
        outcome.identity().unwrap_or("nobody"),
        start.elapsed(),
        stats.rep_attempts,
        stats.signature_ops,
    );

    // Normal approach: the device must grind through helper data records.
    let start = Instant::now();
    let (outcome_n, stats_n, normal) = runner.identify_normal(&reading, &mut rng)?;
    println!(
        "normal approach:    identified {:?} in {:?} ({} Rep, {} signature ops)",
        outcome_n.identity().unwrap_or("nobody"),
        start.elapsed(),
        normal.rep_attempts,
        stats_n.signature_ops,
    );
    assert_eq!(outcome, outcome_n);

    // Someone NOT on the list walks past.
    let stranger = params.sketch().line().random_vector(dim, &mut rng);
    match runner.identify(&stranger, &mut rng) {
        Err(e) => println!("stranger:           not identified ({e}) ✓"),
        Ok((o, _)) => println!("stranger:           UNEXPECTED match {o:?}"),
    }

    Ok(())
}
