//! Derive macros for the vendored `serde` marker traits.
//!
//! The real `serde_derive` generates visitor-based (de)serialization
//! code; the vendored `serde` traits are markers (no required methods),
//! so these derives only need to emit empty trait impls with the right
//! generics. Parsing is done directly on the token stream — no `syn` /
//! `quote`, which are unavailable offline.

use proc_macro::{TokenStream, TokenTree};

/// One parsed generic parameter: its declaration (with bounds, minus
/// defaults) and its bare name as used in type-argument position.
struct GenericParam {
    decl: String,
    name: String,
}

struct TypeHeader {
    name: String,
    params: Vec<GenericParam>,
}

/// Extracts `Name<...generics...>` from a `struct`/`enum` definition.
fn parse_header(input: TokenStream) -> TypeHeader {
    let mut iter = input.into_iter().peekable();

    // Skip attributes, visibility and anything else before the
    // `struct` / `enum` keyword.
    loop {
        match iter.peek() {
            Some(TokenTree::Ident(id)) if matches!(id.to_string().as_str(), "struct" | "enum") => {
                iter.next();
                break;
            }
            Some(_) => {
                iter.next();
            }
            None => panic!("derive input has no struct/enum keyword"),
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum, got {other:?}"),
    };

    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            // Token texts of the current parameter, split later.
            let mut current: Vec<String> = Vec::new();
            for tok in iter.by_ref() {
                match &tok {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        current.push("<".into());
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            if !current.is_empty() {
                                params.push(finish_param(&current));
                            }
                            break;
                        }
                        current.push(">".into());
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        if !current.is_empty() {
                            params.push(finish_param(&current));
                        }
                        current.clear();
                    }
                    other => current.push(other.to_string()),
                }
            }
        }
    }

    TypeHeader { name, params }
}

/// Builds a [`GenericParam`] from the raw tokens of one parameter.
fn finish_param(tokens: &[String]) -> GenericParam {
    // Drop a default (`= ...`) if present; keep bounds (`: ...`).
    let cut = tokens.iter().position(|t| t == "=").unwrap_or(tokens.len());
    let kept = &tokens[..cut];
    let decl = kept.join(" ").replace("' ", "'");

    // The bare name: for `'a: 'b` it is `'a`; for `T: Bound` it is `T`;
    // for `const N : usize` it is `N`.
    let name = if kept.first().map(String::as_str) == Some("'") {
        format!("'{}", kept.get(1).cloned().unwrap_or_default())
    } else if kept.first().map(String::as_str) == Some("const") {
        kept.get(1).cloned().unwrap_or_default()
    } else {
        kept.first().cloned().unwrap_or_default()
    };
    GenericParam { decl, name }
}

fn marker_impl(header: &TypeHeader, trait_path: &str, extra_lifetime: Option<&str>) -> String {
    let mut impl_generics: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        impl_generics.push(lt.to_string());
    }
    impl_generics.extend(header.params.iter().map(|p| p.decl.clone()));
    let type_args: Vec<String> = header.params.iter().map(|p| p.name.clone()).collect();

    let impl_g = if impl_generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_generics.join(", "))
    };
    let type_g = if type_args.is_empty() {
        String::new()
    } else {
        format!("<{}>", type_args.join(", "))
    };
    format!(
        "impl{impl_g} {trait_path} for {name}{type_g} {{}}",
        name = header.name
    )
}

/// Derives the vendored `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    marker_impl(&header, "::serde::Serialize", None)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    marker_impl(&header, "::serde::Deserialize<'de>", Some("'de"))
        .parse()
        .expect("generated Deserialize impl parses")
}
