//! Polynomials over GF(2), bit-packed — used for BCH generator arithmetic
//! and systematic encoding.

use fe_metrics::BitVec;

/// A binary polynomial: bit `i` of the word vector is the coefficient of
/// `x^i`.
///
/// ```rust
/// use fe_ecc::BinPoly;
///
/// let a = BinPoly::from_coeff_bits(&[true, true]);      // 1 + x
/// let sq = a.mul(&a);                                   // 1 + x^2
/// assert_eq!(sq.degree(), Some(2));
/// assert!(sq.coeff(0) && !sq.coeff(1) && sq.coeff(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinPoly {
    words: Vec<u64>,
}

impl BinPoly {
    /// The zero polynomial.
    pub fn zero() -> BinPoly {
        BinPoly { words: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> BinPoly {
        BinPoly { words: vec![1] }
    }

    /// The monomial `x^d`.
    pub fn monomial(d: usize) -> BinPoly {
        let mut words = vec![0u64; d / 64 + 1];
        words[d / 64] = 1u64 << (d % 64);
        BinPoly { words }
    }

    /// Builds from little-endian coefficient bits.
    pub fn from_coeff_bits(bits: &[bool]) -> BinPoly {
        let mut p = BinPoly {
            words: vec![0u64; bits.len().div_ceil(64)],
        };
        for (i, &b) in bits.iter().enumerate() {
            if b {
                p.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        p.trim();
        p
    }

    /// Builds from a [`BitVec`] (bit `i` = coefficient of `x^i`).
    pub fn from_bitvec(bits: &BitVec) -> BinPoly {
        let mut p = BinPoly {
            words: vec![0u64; bits.len().div_ceil(64)],
        };
        for i in 0..bits.len() {
            if bits.get(i) {
                p.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        p.trim();
        p
    }

    /// Converts to a [`BitVec`] of fixed length `len`.
    ///
    /// # Panics
    /// Panics if the degree is `>= len`.
    pub fn to_bitvec(&self, len: usize) -> BitVec {
        if let Some(d) = self.degree() {
            assert!(d < len, "polynomial degree {d} does not fit in {len} bits");
        }
        BitVec::from_fn(len, |i| self.coeff(i))
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Coefficient of `x^i`.
    pub fn coeff(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Degree; `None` for zero.
    pub fn degree(&self) -> Option<usize> {
        let top = self.words.last()?;
        Some((self.words.len() - 1) * 64 + (63 - top.leading_zeros() as usize))
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// Addition = XOR.
    pub fn add(&self, other: &BinPoly) -> BinPoly {
        let len = self.words.len().max(other.words.len());
        let mut words = vec![0u64; len];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) ^ other.words.get(i).copied().unwrap_or(0);
        }
        let mut p = BinPoly { words };
        p.trim();
        p
    }

    /// Carry-less multiplication.
    pub fn mul(&self, other: &BinPoly) -> BinPoly {
        if self.is_zero() || other.is_zero() {
            return BinPoly::zero();
        }
        let deg = self.degree().unwrap() + other.degree().unwrap();
        let mut words = vec![0u64; deg / 64 + 1];
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let shift = wi * 64 + b;
                // XOR other << shift into the accumulator.
                let (word_shift, bit_shift) = (shift / 64, shift % 64);
                for (oi, &ow) in other.words.iter().enumerate() {
                    words[oi + word_shift] ^= ow << bit_shift;
                    if bit_shift != 0 && oi + word_shift + 1 < words.len() {
                        words[oi + word_shift + 1] ^= ow >> (64 - bit_shift);
                    }
                }
            }
        }
        let mut p = BinPoly { words };
        p.trim();
        p
    }

    /// Shift left by `d` (multiply by `x^d`).
    pub fn shl(&self, d: usize) -> BinPoly {
        if self.is_zero() {
            return BinPoly::zero();
        }
        self.mul(&BinPoly::monomial(d))
    }

    /// Remainder modulo `divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn rem(&self, divisor: &BinPoly) -> BinPoly {
        assert!(!divisor.is_zero(), "division by zero polynomial");
        let dd = divisor.degree().unwrap();
        let mut r = self.clone();
        while let Some(rd) = r.degree() {
            if rd < dd {
                break;
            }
            r = r.add(&divisor.shl(rd - dd));
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_coeff() {
        let p = BinPoly::from_coeff_bits(&[true, false, true]); // 1 + x^2
        assert_eq!(p.degree(), Some(2));
        assert!(p.coeff(0) && !p.coeff(1) && p.coeff(2) && !p.coeff(3));
        assert_eq!(BinPoly::zero().degree(), None);
    }

    #[test]
    fn add_self_is_zero() {
        let p = BinPoly::from_coeff_bits(&[true, true, false, true]);
        assert!(p.add(&p).is_zero());
    }

    #[test]
    fn mul_small() {
        // (1+x)(1+x) = 1 + x^2 over GF(2).
        let p = BinPoly::from_coeff_bits(&[true, true]);
        let sq = p.mul(&p);
        assert_eq!(sq, BinPoly::from_coeff_bits(&[true, false, true]));
    }

    #[test]
    fn mul_cross_word_boundary() {
        // x^63 * x^2 = x^65.
        let p = BinPoly::monomial(63).mul(&BinPoly::monomial(2));
        assert_eq!(p, BinPoly::monomial(65));
        // (x^63 + 1)(x + 1) = x^64 + x^63 + x + 1.
        let a = BinPoly::monomial(63).add(&BinPoly::one());
        let b = BinPoly::monomial(1).add(&BinPoly::one());
        let prod = a.mul(&b);
        assert!(prod.coeff(64) && prod.coeff(63) && prod.coeff(1) && prod.coeff(0));
        assert_eq!(prod.degree(), Some(64));
    }

    #[test]
    fn rem_basic() {
        // x^4 + x + 1 mod (x^2 + 1): x^4 = (x^2+1)^2 + ... compute directly:
        // x^4 + x + 1 = (x^2+1)(x^2+1) + x → remainder x.
        let a = BinPoly::from_coeff_bits(&[true, true, false, false, true]);
        let d = BinPoly::from_coeff_bits(&[true, false, true]);
        assert_eq!(a.rem(&d), BinPoly::monomial(1));
    }

    #[test]
    fn rem_smaller_degree_is_identity() {
        let a = BinPoly::from_coeff_bits(&[true, true]);
        let d = BinPoly::monomial(5);
        assert_eq!(a.rem(&d), a);
    }

    #[test]
    fn mul_rem_consistency() {
        // (a*d + r) mod d == r  when deg r < deg d.
        let a = BinPoly::from_coeff_bits(&[true, false, true, true, false, true]);
        let d = BinPoly::from_coeff_bits(&[true, true, false, true]); // deg 3
        let r = BinPoly::from_coeff_bits(&[false, true, true]); // deg 2
        let v = a.mul(&d).add(&r);
        assert_eq!(v.rem(&d), r);
    }

    #[test]
    fn bitvec_roundtrip() {
        let bits = BitVec::from_fn(70, |i| i % 7 == 0);
        let p = BinPoly::from_bitvec(&bits);
        assert_eq!(p.to_bitvec(70), bits);
    }
}
