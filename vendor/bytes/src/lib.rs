//! Offline, API-compatible subset of the `bytes` crate.
//!
//! [`Bytes`] / [`BytesMut`] here are thin wrappers over `Vec<u8>` with a
//! read cursor — no reference-counted zero-copy slicing, which the
//! workspace's wire codec does not need. All multi-byte accessors are
//! big-endian, matching upstream.

#![forbid(unsafe_code)]

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `n` bytes into a fresh [`Bytes`].
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Fills `dest` from the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dest.len()` bytes remain.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        let b = self.copy_to_bytes(dest.len());
        dest.copy_from_slice(&b.to_vec());
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
}

/// Write access to a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// The unread bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "buffer underflow");
        let out = Bytes::copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        out
    }
}

/// A growable, writable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// The written bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(0);
        w.put_u8(1);
        w.put_u16(2);
        w.put_u32(3);
        w.put_u64(4);
        w.put_i64(-5);
        w.put_slice(b"xy");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 2);
        assert_eq!(r.get_u32(), 3);
        assert_eq!(r.get_u64(), 4);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.copy_to_bytes(2).to_vec(), b"xy");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1]);
        r.get_u32();
    }
}
