//! Reed–Solomon codes over GF(2^m) with Berlekamp–Massey + Forney decoding.

use crate::gf2m::Gf2m;
use crate::poly::Poly;
use crate::CodeError;

/// A Reed–Solomon code of length `n` and dimension `k` over GF(2^m),
/// correcting `t = (n - k) / 2` symbol errors.
///
/// ```rust
/// use fe_ecc::ReedSolomon;
///
/// # fn main() -> Result<(), fe_ecc::CodeError> {
/// let rs = ReedSolomon::new(8, 255, 223)?; // the classic (255, 223) code
/// assert_eq!(rs.t(), 16);
/// let msg: Vec<u16> = (0..223).map(|i| (i % 256) as u16).collect();
/// let mut word = rs.encode(&msg)?;
/// word[5] ^= 0xff; // corrupt one symbol
/// let decoded = rs.decode(&word)?;
/// assert_eq!(decoded.message, msg);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    field: Gf2m,
    n: usize,
    k: usize,
    generator: Poly,
}

/// Successful Reed–Solomon decode result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsDecode {
    /// The corrected codeword (length `n`).
    pub codeword: Vec<u16>,
    /// The systematic message symbols (length `k`).
    pub message: Vec<u16>,
    /// Number of symbol errors corrected.
    pub corrected_errors: usize,
}

/// Berlekamp–Massey: finds the minimal LFSR (error-locator polynomial σ,
/// with σ(0) = 1) generating the syndrome sequence.
///
/// Shared by the BCH and RS decoders.
pub(crate) fn berlekamp_massey(f: &Gf2m, syndromes: &[u16]) -> Poly {
    let mut c = Poly::one(); // current connection polynomial
    let mut b = Poly::one(); // previous connection polynomial
    let mut l = 0usize; // current LFSR length
    let mut m = 1usize; // steps since last length change
    let mut last_d = 1u16; // discrepancy at last length change

    for n in 0..syndromes.len() {
        let mut d = syndromes[n];
        for i in 1..=l {
            d ^= f.mul(c.coeff(i), syndromes[n - i]);
        }
        if d == 0 {
            m += 1;
        } else {
            let coef = f.div(d, last_d).expect("last_d is non-zero");
            let adjustment = b.scale(coef, f).mul(&Poly::monomial(1, m), f);
            if 2 * l <= n {
                let prev_c = c.clone();
                c = c.add(&adjustment, f);
                l = n + 1 - l;
                b = prev_c;
                last_d = d;
                m = 1;
            } else {
                c = c.add(&adjustment, f);
                m += 1;
            }
        }
    }
    c
}

impl ReedSolomon {
    /// Constructs an RS code with symbols in GF(2^m).
    ///
    /// # Errors
    /// [`CodeError::BadParameters`] unless `k < n <= 2^m - 1` and `n - k`
    /// is even and positive.
    pub fn new(m: u32, n: usize, k: usize) -> Result<ReedSolomon, CodeError> {
        let field = Gf2m::new(m)?;
        if n > field.order() as usize || k == 0 || k >= n || !(n - k).is_multiple_of(2) {
            return Err(CodeError::BadParameters);
        }
        // g(x) = Π_{i=1}^{n-k} (x - α^i)
        let mut generator = Poly::one();
        for i in 1..=(n - k) {
            generator = generator.mul(
                &Poly::from_coeffs(vec![field.alpha_pow(i as i64), 1]),
                &field,
            );
        }
        Ok(ReedSolomon {
            field,
            n,
            k,
            generator,
        })
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Symbol-error correction capability `(n - k) / 2`.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Borrows the underlying field.
    pub fn field(&self) -> &Gf2m {
        &self.field
    }

    /// Systematic encoding: message symbols occupy the high-degree
    /// positions `[n-k, n)`, parity the low positions.
    ///
    /// # Errors
    /// [`CodeError::WrongLength`] if `message.len() != k`;
    /// [`CodeError::BadParameters`] if a symbol exceeds the field size.
    pub fn encode(&self, message: &[u16]) -> Result<Vec<u16>, CodeError> {
        if message.len() != self.k {
            return Err(CodeError::WrongLength {
                expected: self.k,
                got: message.len(),
            });
        }
        if message.iter().any(|&s| s as usize >= self.field.size()) {
            return Err(CodeError::BadParameters);
        }
        let parity_len = self.n - self.k;
        let mut coeffs = vec![0u16; self.n];
        coeffs[parity_len..].copy_from_slice(message);
        let msg_poly = Poly::from_coeffs(coeffs);
        let (_, rem) = msg_poly.div_rem(&self.generator, &self.field);
        let mut word = vec![0u16; self.n];
        for (i, w) in word.iter_mut().enumerate().take(parity_len) {
            *w = rem.coeff(i);
        }
        word[parity_len..].copy_from_slice(message);
        Ok(word)
    }

    fn syndromes(&self, word: &[u16]) -> Vec<u16> {
        let two_t = self.n - self.k;
        let r = Poly::from_coeffs(word.to_vec());
        (1..=two_t)
            .map(|j| r.eval(self.field.alpha_pow(j as i64), &self.field))
            .collect()
    }

    /// Decodes a received word, correcting up to `t` symbol errors.
    ///
    /// # Errors
    /// [`CodeError::WrongLength`] on a size mismatch;
    /// [`CodeError::TooManyErrors`] when the error pattern is beyond the
    /// correction radius.
    pub fn decode(&self, word: &[u16]) -> Result<RsDecode, CodeError> {
        if word.len() != self.n {
            return Err(CodeError::WrongLength {
                expected: self.n,
                got: word.len(),
            });
        }
        let f = &self.field;
        let syn = self.syndromes(word);
        if syn.iter().all(|&s| s == 0) {
            return Ok(RsDecode {
                message: word[self.n - self.k..].to_vec(),
                codeword: word.to_vec(),
                corrected_errors: 0,
            });
        }

        let sigma = berlekamp_massey(f, &syn);
        let num_errors = sigma.degree().unwrap_or(0);
        if num_errors == 0 || num_errors > self.t() {
            return Err(CodeError::TooManyErrors);
        }

        // Error evaluator Ω(x) = S(x)·σ(x) mod x^{2t}.
        let s_poly = Poly::from_coeffs(syn.clone());
        let omega_full = s_poly.mul(&sigma, f);
        let omega = Poly::from_coeffs(
            omega_full.coeffs()[..omega_full.coeffs().len().min(self.n - self.k)].to_vec(),
        );
        let sigma_deriv = sigma.derivative(f);

        // Chien search + Forney error values.
        let mut corrected = word.to_vec();
        let mut found = 0usize;
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.n {
            let x_inv = f.alpha_pow(-(i as i64));
            if sigma.eval(x_inv, f) != 0 {
                continue;
            }
            let denom = sigma_deriv.eval(x_inv, f);
            if denom == 0 {
                return Err(CodeError::TooManyErrors);
            }
            // b = 1 convention: e_i = Ω(X_i^{-1}) / σ'(X_i^{-1}).
            let magnitude = f
                .div(omega.eval(x_inv, f), denom)
                .expect("denominator checked non-zero");
            corrected[i] ^= magnitude;
            found += 1;
        }
        if found != num_errors {
            return Err(CodeError::TooManyErrors);
        }
        if self.syndromes(&corrected).iter().any(|&s| s != 0) {
            return Err(CodeError::TooManyErrors);
        }
        Ok(RsDecode {
            message: corrected[self.n - self.k..].to_vec(),
            codeword: corrected,
            corrected_errors: found,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn construction_validation() {
        assert!(ReedSolomon::new(8, 255, 223).is_ok());
        assert!(ReedSolomon::new(8, 256, 200).is_err()); // n > 2^m - 1
        assert!(ReedSolomon::new(8, 255, 254).is_err()); // n - k odd
        assert!(ReedSolomon::new(8, 10, 10).is_err()); // k >= n
        assert!(ReedSolomon::new(8, 10, 0).is_err());
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 15, 9).unwrap();
        let msg: Vec<u16> = (1..=9).collect();
        let word = rs.encode(&msg).unwrap();
        assert_eq!(&word[6..], &msg[..]);
    }

    #[test]
    fn encode_validates_symbols() {
        let rs = ReedSolomon::new(4, 15, 9).unwrap();
        let msg = vec![16u16; 9]; // 16 >= 2^4
        assert_eq!(rs.encode(&msg), Err(CodeError::BadParameters));
    }

    #[test]
    fn zero_syndrome_for_codewords() {
        let rs = ReedSolomon::new(6, 63, 47).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let msg: Vec<u16> = (0..47).map(|_| rng.gen_range(0..64)).collect();
            let word = rs.encode(&msg).unwrap();
            assert!(rs.syndromes(&word).iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn corrects_random_errors_up_to_t() {
        let rs = ReedSolomon::new(8, 63, 47).unwrap(); // t = 8
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..20 {
            let msg: Vec<u16> = (0..47).map(|_| rng.gen_range(0..256)).collect();
            let word = rs.encode(&msg).unwrap();
            let num_err = rng.gen_range(1..=rs.t());
            let mut corrupted = word.clone();
            let mut positions = std::collections::HashSet::new();
            while positions.len() < num_err {
                positions.insert(rng.gen_range(0..rs.n()));
            }
            for &p in &positions {
                corrupted[p] ^= rng.gen_range(1..256) as u16;
            }
            let dec = rs.decode(&corrupted).unwrap();
            assert_eq!(dec.message, msg, "trial {trial}");
            assert_eq!(dec.corrected_errors, num_err);
        }
    }

    #[test]
    fn beyond_capacity_detected_or_miscorrected_consistently() {
        let rs = ReedSolomon::new(4, 15, 11).unwrap(); // t = 2
        let msg: Vec<u16> = (0..11).collect();
        let word = rs.encode(&msg).unwrap();
        let mut corrupted = word.clone();
        for p in [0usize, 3, 7] {
            corrupted[p] ^= 0x5;
        }
        match rs.decode(&corrupted) {
            Err(CodeError::TooManyErrors) => {}
            Ok(dec) => {
                // If it "succeeds", it must at least be a valid codeword.
                assert!(rs.syndromes(&dec.codeword).iter().all(|&s| s == 0));
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let rs = ReedSolomon::new(4, 15, 9).unwrap();
        assert!(matches!(
            rs.decode(&[0u16; 14]),
            Err(CodeError::WrongLength {
                expected: 15,
                got: 14
            })
        ));
        assert!(matches!(
            rs.encode(&[0u16; 8]),
            Err(CodeError::WrongLength {
                expected: 9,
                got: 8
            })
        ));
    }

    #[test]
    fn berlekamp_massey_finds_known_lfsr() {
        // Syndromes of a single error at position p with magnitude e:
        // S_j = e·α^{pj} → σ(x) = 1 - α^p x (degree 1).
        let f = Gf2m::new(4).unwrap();
        let p = 6i64;
        let e = 9u16;
        let syn: Vec<u16> = (1..=4).map(|j| f.mul(e, f.alpha_pow(p * j))).collect();
        let sigma = berlekamp_massey(&f, &syn);
        assert_eq!(sigma.degree(), Some(1));
        // Root of sigma should be α^{-p}.
        assert_eq!(sigma.eval(f.alpha_pow(-p), &f), 0);
    }
}
