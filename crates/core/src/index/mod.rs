//! Server-side sketch lookup for the identification protocol.
//!
//! Given an incoming probe sketch `s'`, the server must find the enrolled
//! record whose sketch matches under conditions (1)–(4). Three strategies:
//!
//! * [`ScanIndex`] — the paper-faithful approach: scan records, applying
//!   the cheap integer conditions with early abort. At the paper's
//!   parameters a non-matching record fails after ~2 coordinates in
//!   expectation (pass probability per coordinate ≈ (2t+1)/ka ≈ ½), so the
//!   scan is orders of magnitude cheaper than one signature operation —
//!   the observed "constant" identification cost.
//! * [`BucketIndex`] — an engineering extension: an LSH-style hash index
//!   on a coarse quantization of the leading coordinates, with multi-probe
//!   lookup. Genuinely sublinear in the number of records; documented as
//!   an extension in DESIGN.md and quantified in the index ablation bench.
//! * [`ShardedIndex`] — a horizontal-scaling wrapper: records are
//!   partitioned round-robin across N inner indexes and looked up on all
//!   shards in parallel, with stable *global* record ids. Any
//!   [`SketchIndex`] (scan or bucket) can serve as the shard backend.
//!
//! The trade-offs between the three — and the early-abort cost model that
//! makes the plain scan so strong at the paper's parameters — are worked
//! through in `DESIGN.md` at the repository root.

mod bucket;
mod scan;
mod sharded;

pub use bucket::BucketIndex;
pub use scan::ScanIndex;
pub use sharded::ShardedIndex;

/// A unique record handle assigned by the index.
///
/// Ids are **stable**: once assigned they are never renumbered or reused,
/// even across [`SketchIndex::remove`] — so they can be stored in
/// server-side records and session state. The one sanctioned exception
/// is [`SketchIndex::compact`], which reclaims tombstone slots and
/// returns the old → new renumbering so callers can remap their own
/// references; stability holds *between* compactions.
pub type RecordId = usize;

/// A lookup structure over enrolled sketches.
///
/// ```rust
/// use fe_core::{ScanIndex, SketchIndex};
///
/// let mut index = ScanIndex::new(100, 400); // threshold t, ring ka
/// let a = index.insert(vec![10, -20, 30]);
/// let b = index.insert(vec![180, 180, -180]);
/// assert_eq!(index.lookup(&[15, -25, 35]), Some(a)); // within t = 100
///
/// // Revocation tombstones the slot; ids stay stable…
/// assert!(index.remove(a));
/// assert_eq!(index.lookup(&[15, -25, 35]), None);
/// assert_eq!(index.len(), 1);
///
/// // …until an explicit compaction reclaims the dead slots and reports
/// // the renumbering (b moves to slot 0).
/// let mapping = index.compact();
/// assert_eq!(mapping, vec![(b, 0)]);
/// assert_eq!(index.lookup(&[185, 175, -185]), Some(0));
/// # assert_eq!(index.len(), 1);
/// ```
pub trait SketchIndex {
    /// Inserts a sketch, returning its record id.
    fn insert(&mut self, sketch: Vec<i64>) -> RecordId;

    /// Finds the first record matching the probe under conditions
    /// (1)–(4), if any. "First" means the lowest live [`RecordId`], i.e.
    /// earliest-enrolled-wins, for every implementation.
    fn lookup(&self, probe: &[i64]) -> Option<RecordId>;

    /// Finds *all* matching records (used to measure false-close rates).
    /// Implementations return ids in ascending order.
    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId>;

    /// Resolves a batch of probes in one call, returning the first match
    /// per probe (position-aligned with `probes`).
    ///
    /// The default implementation is a sequential loop over
    /// [`SketchIndex::lookup`]; implementations with internal parallelism
    /// ([`ShardedIndex`]) override it to fan the batch out across worker
    /// threads. Batch entry points exist so a server can amortize one
    /// lock acquisition over many concurrent identification requests.
    fn lookup_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        probes.iter().map(|p| self.lookup(p)).collect()
    }

    /// Removes a record (revocation). Record ids are stable: removal
    /// never renumbers other records. Returns `false` if the id was
    /// unknown or already removed.
    fn remove(&mut self, id: RecordId) -> bool;

    /// Number of live (non-removed) sketches.
    fn len(&self) -> usize;

    /// `true` when no sketches are enrolled.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total record slots held, live **and** tombstoned. The gap
    /// `slots() - len()` is the memory a [`SketchIndex::compact`] pass
    /// would reclaim.
    fn slots(&self) -> usize;

    /// Every live record as `(id, sketch)` pairs in ascending id order
    /// (clones the sketches; used by compaction and durable snapshots).
    fn live_records(&self) -> Vec<(RecordId, Vec<i64>)>;

    /// Drops every record — live and tombstoned — and resets id
    /// assignment to zero, as if freshly constructed (tuning parameters
    /// are retained). Ids *are* reused after a clear; this is a
    /// compaction/rebuild primitive, not a bulk [`SketchIndex::remove`].
    fn clear(&mut self);

    /// Reclaims tombstone slots: live records are renumbered densely
    /// (`0..len()`) preserving their relative order, and the old → new
    /// id mapping is returned so callers can remap stored [`RecordId`]s.
    ///
    /// This is the fix for unbounded growth under enroll/revoke churn:
    /// without it, [`ScanIndex`]/[`BucketIndex`] entry tables (and every
    /// shard of a [`ShardedIndex`]) grow with the number of enrollments
    /// *ever*, not the number currently live. Servers expose it through
    /// their snapshot-compaction pass, where record slots are being
    /// rewritten anyway.
    fn compact(&mut self) -> Vec<(RecordId, RecordId)> {
        let live = self.live_records();
        self.clear();
        live.into_iter()
            .map(|(old, sketch)| (old, self.insert(sketch)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChebyshevSketch, SecureSketch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const T: u64 = 100;
    const KA: u64 = 400;

    /// Builds (enrolled sketches, genuine probes) pairs from the real
    /// sketch scheme so index tests exercise realistic data.
    fn make_population(
        users: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
        let scheme = ChebyshevSketch::paper_defaults();
        let mut sketches = Vec::new();
        let mut probes = Vec::new();
        for _ in 0..users {
            let x = scheme.line().random_vector(dim, rng);
            let s = scheme.sketch(&x, rng).unwrap();
            let noisy: Vec<i64> = x
                .iter()
                .map(|&v| {
                    use rand::Rng;
                    scheme
                        .line()
                        .wrap(v + rng.gen_range(-(T as i64)..=T as i64))
                })
                .collect();
            let sp = scheme.sketch(&noisy, rng).unwrap();
            sketches.push(s);
            probes.push(sp);
        }
        (sketches, probes)
    }

    fn check_index<I: SketchIndex>(mut index: I, rng: &mut StdRng) {
        let (sketches, probes) = make_population(50, 32, rng);
        for s in &sketches {
            index.insert(s.clone());
        }
        assert_eq!(index.len(), 50);
        // Every genuine probe finds its own record.
        for (uid, probe) in probes.iter().enumerate() {
            let found = index.lookup(probe).expect("genuine probe must match");
            assert_eq!(found, uid, "probe {uid} matched the wrong record");
        }
        // The batch path agrees with the one-at-a-time path.
        let batch = index.lookup_batch(&probes);
        assert_eq!(batch.len(), probes.len());
        for (uid, found) in batch.iter().enumerate() {
            assert_eq!(*found, Some(uid));
        }
        // Random junk probes (fresh users) almost surely match nothing.
        let scheme = ChebyshevSketch::paper_defaults();
        for _ in 0..20 {
            let x = scheme.line().random_vector(32, rng);
            let s = scheme.sketch(&x, rng).unwrap();
            assert_eq!(index.lookup(&s), None, "impostor matched");
        }
    }

    #[test]
    fn scan_index_end_to_end() {
        let mut rng = StdRng::seed_from_u64(900);
        check_index(ScanIndex::new(T, KA), &mut rng);
    }

    #[test]
    fn bucket_index_end_to_end() {
        let mut rng = StdRng::seed_from_u64(901);
        check_index(BucketIndex::new(T, KA, 4), &mut rng);
    }

    #[test]
    fn sharded_scan_end_to_end() {
        let mut rng = StdRng::seed_from_u64(904);
        check_index(ShardedIndex::scan(4, T, KA), &mut rng);
    }

    #[test]
    fn sharded_bucket_end_to_end() {
        let mut rng = StdRng::seed_from_u64(905);
        check_index(ShardedIndex::bucket(3, T, KA, 4), &mut rng);
    }

    #[test]
    fn sharded_single_shard_end_to_end() {
        let mut rng = StdRng::seed_from_u64(906);
        check_index(ShardedIndex::scan(1, T, KA), &mut rng);
    }

    #[test]
    fn bucket_index_agrees_with_scan() {
        let mut rng = StdRng::seed_from_u64(902);
        let (sketches, probes) = make_population(100, 16, &mut rng);
        let mut scan = ScanIndex::new(T, KA);
        let mut bucket = BucketIndex::new(T, KA, 3);
        for s in &sketches {
            scan.insert(s.clone());
            bucket.insert(s.clone());
        }
        for probe in &probes {
            assert_eq!(scan.lookup_all(probe), bucket.lookup_all(probe));
        }
    }

    #[test]
    fn sharded_agrees_with_scan_including_removals() {
        let mut rng = StdRng::seed_from_u64(907);
        let (sketches, probes) = make_population(120, 16, &mut rng);
        let mut scan = ScanIndex::new(T, KA);
        let mut sharded = ShardedIndex::scan(5, T, KA);
        for s in &sketches {
            let a = scan.insert(s.clone());
            let b = sharded.insert(s.clone());
            assert_eq!(a, b, "global ids must mirror single-index ids");
        }
        // Remove every seventh record from both.
        for id in (0..120).step_by(7) {
            assert!(scan.remove(id));
            assert!(sharded.remove(id));
        }
        assert_eq!(scan.len(), sharded.len());
        for probe in &probes {
            assert_eq!(scan.lookup_all(probe), sharded.lookup_all(probe));
            assert_eq!(scan.lookup(probe), sharded.lookup(probe));
        }
    }

    #[test]
    fn bucket_candidates_are_pruned_when_noise_is_small() {
        // Pruning requires ka >> t (see type docs): use t = 25 on the
        // paper's line, where each coordinate has 7 cells.
        let t = 25u64;
        let scheme = ChebyshevSketch::new(*ChebyshevSketch::paper_defaults().line(), t).unwrap();
        let mut rng = StdRng::seed_from_u64(903);
        let mut bucket = BucketIndex::new(t, KA, 4);
        let mut probes = Vec::new();
        for _ in 0..500 {
            let x = scheme.line().random_vector(16, &mut rng);
            bucket.insert(scheme.sketch(&x, &mut rng).unwrap());
            let noisy: Vec<i64> = x
                .iter()
                .map(|&v| {
                    use rand::Rng;
                    scheme
                        .line()
                        .wrap(v + rng.gen_range(-(t as i64)..=t as i64))
                })
                .collect();
            probes.push(scheme.sketch(&noisy, &mut rng).unwrap());
        }
        // Every genuine probe still matches its record…
        for (uid, probe) in probes.iter().enumerate() {
            assert_eq!(bucket.lookup(probe), Some(uid));
        }
        // …and candidate sets are far smaller than the population:
        // expected fraction (3/7)^4 ≈ 3.4% → ~17 of 500.
        let total: usize = probes.iter().map(|p| bucket.candidates(p).len()).sum();
        let avg = total as f64 / probes.len() as f64;
        assert!(
            avg < 100.0,
            "bucket index barely prunes: avg candidates {avg}"
        );
    }

    #[test]
    fn lookup_all_finds_duplicates() {
        let mut scan = ScanIndex::new(T, KA);
        scan.insert(vec![10, 20, 30]);
        scan.insert(vec![15, 25, 35]); // within t of the first
        scan.insert(vec![300, 20, 30]); // far in coordinate 0
        let matches = scan.lookup_all(&[12, 22, 32]);
        assert_eq!(matches, vec![0, 1]);
    }

    #[test]
    fn empty_index_finds_nothing() {
        let scan = ScanIndex::new(T, KA);
        assert!(scan.is_empty());
        assert_eq!(scan.lookup(&[1, 2, 3]), None);
        let bucket = BucketIndex::new(T, KA, 2);
        assert_eq!(bucket.lookup(&[1, 2, 3]), None);
        let sharded = ShardedIndex::scan(4, T, KA);
        assert!(sharded.is_empty());
        assert_eq!(sharded.lookup(&[1, 2, 3]), None);
        assert_eq!(sharded.lookup_batch(&[vec![1, 2, 3]]), vec![None]);
    }

    #[test]
    fn dimension_mismatch_is_no_match() {
        let mut scan = ScanIndex::new(T, KA);
        scan.insert(vec![1, 2, 3]);
        assert_eq!(scan.lookup(&[1, 2]), None);
    }

    #[test]
    #[should_panic(expected = "prefix_dims")]
    fn bucket_prefix_validation() {
        BucketIndex::new(T, KA, 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_rejects_zero_shards() {
        ShardedIndex::scan(0, T, KA);
    }

    #[test]
    fn scan_removal_keeps_ids_stable() {
        let mut scan = ScanIndex::new(T, KA);
        let a = scan.insert(vec![10, 20, 30]);
        let b = scan.insert(vec![150, -150, 90]);
        assert_eq!(scan.len(), 2);
        assert!(scan.remove(a));
        assert!(!scan.remove(a), "double removal must report false");
        assert_eq!(scan.len(), 1);
        // a no longer matches; b keeps its id and still matches.
        assert_eq!(scan.lookup(&[10, 20, 30]), None);
        assert_eq!(scan.lookup(&[150, -150, 90]), Some(b));
        assert_eq!(scan.sketch(a), None);
        // New inserts get fresh ids, never recycling a's.
        let c = scan.insert(vec![1, 2, 3]);
        assert_ne!(c, a);
        assert!(!scan.remove(999), "unknown id");
    }

    #[test]
    fn sharded_removal_keeps_ids_stable() {
        let mut sharded = ShardedIndex::scan(3, T, KA);
        let a = sharded.insert(vec![10, 20, 30]);
        let b = sharded.insert(vec![150, -150, 90]);
        let c = sharded.insert(vec![-120, 60, 10]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert!(sharded.remove(b));
        assert!(!sharded.remove(b), "double removal must report false");
        assert_eq!(sharded.len(), 2);
        assert_eq!(sharded.lookup(&[150, -150, 90]), None);
        assert_eq!(sharded.lookup(&[10, 20, 30]), Some(a));
        assert_eq!(sharded.lookup(&[-120, 60, 10]), Some(c));
        // New inserts continue the global sequence.
        let d = sharded.insert(vec![77, 77, 77]);
        assert_eq!(d, 3);
        assert!(!sharded.remove(999), "unknown id");
    }

    /// Shared churn scenario: heavy enroll/revoke cycles must not grow
    /// the slot table without bound once compaction runs.
    fn check_compaction<I: SketchIndex>(mut index: I, rng: &mut StdRng) {
        let (sketches, probes) = make_population(40, 16, rng);
        for s in &sketches {
            index.insert(s.clone());
        }
        // Revoke 3 of every 4 records.
        for id in 0..40 {
            if id % 4 != 0 {
                assert!(index.remove(id));
            }
        }
        assert_eq!(index.len(), 10);
        assert_eq!(index.slots(), 40);

        let mapping = index.compact();
        // Survivors renumber densely, preserving order.
        let expected: Vec<(RecordId, RecordId)> = (0..10).map(|i| (i * 4, i)).collect::<Vec<_>>();
        assert_eq!(mapping, expected);
        assert_eq!(index.len(), 10);
        assert_eq!(index.slots(), 10, "tombstones must be reclaimed");

        // Genuine probes for survivors resolve at their *new* ids; the
        // revoked ones stay gone.
        for (old, probe) in probes.iter().enumerate() {
            match index.lookup(probe) {
                Some(found) => {
                    assert_eq!(old % 4, 0, "revoked record {old} matched");
                    assert_eq!(found, old / 4);
                }
                None => assert_ne!(old % 4, 0, "survivor {old} lost"),
            }
        }

        // Sustained churn with periodic compaction keeps memory
        // proportional to live records, not total enrollments ever.
        let (more, _) = make_population(60, 16, rng);
        for s in &more {
            let id = index.insert(s.clone());
            assert!(index.remove(id));
            index.compact();
        }
        assert_eq!(index.len(), 10);
        assert_eq!(index.slots(), 10);
    }

    #[test]
    fn scan_compaction_reclaims_tombstones() {
        let mut rng = StdRng::seed_from_u64(910);
        check_compaction(ScanIndex::new(T, KA), &mut rng);
    }

    #[test]
    fn bucket_compaction_reclaims_tombstones() {
        let mut rng = StdRng::seed_from_u64(911);
        check_compaction(BucketIndex::new(T, KA, 4), &mut rng);
    }

    #[test]
    fn sharded_compaction_reclaims_tombstones() {
        let mut rng = StdRng::seed_from_u64(912);
        check_compaction(ShardedIndex::scan(3, T, KA), &mut rng);
    }

    #[test]
    fn sharded_compaction_rebalances_and_stays_consistent() {
        // Remove a skewed subset (everything on shard 0), compact, and
        // verify the rebuilt sharded index agrees with a compacted scan.
        let mut rng = StdRng::seed_from_u64(913);
        let (sketches, probes) = make_population(60, 16, &mut rng);
        let mut scan = ScanIndex::new(T, KA);
        let mut sharded = ShardedIndex::scan(4, T, KA);
        for s in &sketches {
            scan.insert(s.clone());
            sharded.insert(s.clone());
        }
        for id in (0..60).step_by(4) {
            // Global ids ≡ 0 (mod 4) all live on shard 0.
            assert!(scan.remove(id));
            assert!(sharded.remove(id));
        }
        assert_eq!(scan.compact(), sharded.compact());
        assert_eq!(scan.len(), sharded.len());
        for probe in &probes {
            assert_eq!(scan.lookup(probe), sharded.lookup(probe));
            assert_eq!(scan.lookup_all(probe), sharded.lookup_all(probe));
        }
        // Fresh inserts continue dense after compaction.
        let a = scan.insert(vec![0; 16]);
        let b = sharded.insert(vec![0; 16]);
        assert_eq!(a, b);
        assert_eq!(a, 45);
    }

    #[test]
    fn clear_resets_id_assignment() {
        let mut scan = ScanIndex::new(T, KA);
        scan.insert(vec![1, 2, 3]);
        scan.insert(vec![4, 5, 6]);
        scan.clear();
        assert!(scan.is_empty());
        assert_eq!(scan.slots(), 0);
        assert_eq!(scan.insert(vec![7, 8, 9]), 0, "ids restart after clear");

        let mut sharded = ShardedIndex::scan(2, T, KA);
        sharded.insert(vec![1, 2]);
        sharded.clear();
        assert_eq!(sharded.insert(vec![3, 4]), 0);
    }

    #[test]
    fn live_records_are_ascending_and_live_only() {
        let mut sharded = ShardedIndex::scan(3, T, KA);
        for i in 0..9 {
            sharded.insert(vec![i, i, i]);
        }
        sharded.remove(4);
        let live = sharded.live_records();
        let ids: Vec<RecordId> = live.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 5, 6, 7, 8]);
        assert_eq!(live[4].1, vec![5, 5, 5]);
    }

    #[test]
    fn bucket_removal_works() {
        let mut bucket = BucketIndex::new(T, KA, 2);
        let a = bucket.insert(vec![10, 20, 30]);
        let b = bucket.insert(vec![12, 22, 32]);
        assert_eq!(bucket.lookup_all(&[11, 21, 31]), vec![a, b]);
        assert!(bucket.remove(a));
        assert_eq!(bucket.lookup_all(&[11, 21, 31]), vec![b]);
        assert_eq!(bucket.len(), 1);
        assert!(!bucket.remove(a));
    }
}
