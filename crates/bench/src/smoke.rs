//! Machine-readable smoke-bench reporting: `BENCH_SMOKE.json`.
//!
//! CI smoke-runs the bench matrix (`FE_BENCH_SMOKE=1`) on every PR, but
//! criterion's console output is write-only history — nobody diffs it.
//! This module gives each bench a one-call way to record its headline
//! numbers as JSON so the perf trajectory is an artifact:
//!
//! * each bench calls [`record`] with `(metric, value)` pairs; the pairs
//!   are written to a per-bench fragment under
//!   `target/experiments/bench_smoke/`;
//! * after every write the fragments are merged into **`BENCH_SMOKE.json`
//!   at the repository root** (bench name → metric map), so the file is
//!   complete no matter which subset of benches ran or in what order;
//! * CI uploads the merged file as a workflow artifact.
//!
//! Values are recorded under whatever run mode was active; the `smoke`
//! key in every section says which (`1` = reduced CI sizes, `0` = full
//! sweep), so numbers from different modes are never conflated.

use std::path::PathBuf;

/// `true` when `FE_BENCH_SMOKE=1` (or any value) asks benches to run
/// their reduced, CI-sized sweeps.
pub fn smoke_mode() -> bool {
    std::env::var_os("FE_BENCH_SMOKE").is_some()
}

/// Where the fragments and the merged report live: the repository by
/// default (`target/experiments/bench_smoke/` + `BENCH_SMOKE.json` at
/// the root), or under `FE_BENCH_SMOKE_OUT` when set (tests point this
/// at a scratch directory so unit runs never touch the real report).
fn report_root() -> (PathBuf, PathBuf) {
    if let Some(out) = std::env::var_os("FE_BENCH_SMOKE_OUT") {
        let root = PathBuf::from(out);
        (root.join("bench_smoke"), root.join("BENCH_SMOKE.json"))
    } else {
        let mut repo_root = crate::experiments_dir();
        repo_root.pop(); // target/experiments → target
        repo_root.pop(); // target → repo root
        (
            crate::experiments_dir().join("bench_smoke"),
            repo_root.join("BENCH_SMOKE.json"),
        )
    }
}

/// Keys must stay valid JSON without escaping: keep them to
/// identifier-ish ASCII.
fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '/') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats a metric value: integers stay integral, everything else gets
/// three decimals; non-finite values (a degenerate measurement) are
/// recorded as `null`.
fn format_value(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Records one bench's headline metrics and re-merges
/// `BENCH_SMOKE.json` at the repository root. Returns the merged file's
/// path.
///
/// # Panics
/// Panics on I/O errors — a perf record that silently fails to write
/// would defeat its purpose.
pub fn record(bench: &str, metrics: &[(&str, f64)]) -> PathBuf {
    let (dir, merged) = report_root();
    std::fs::create_dir_all(&dir).expect("create bench_smoke dir");

    let mut body = String::from("{\n");
    body.push_str(&format!(
        "    \"smoke\": {}",
        if smoke_mode() { 1 } else { 0 }
    ));
    for (key, value) in metrics {
        body.push_str(",\n");
        body.push_str(&format!(
            "    \"{}\": {}",
            sanitize(key),
            format_value(*value)
        ));
    }
    body.push_str("\n  }");
    std::fs::write(dir.join(format!("{}.json", sanitize(bench))), &body)
        .expect("write bench fragment");

    merge(&dir, merged)
}

/// Reads the previously recorded value of `bench.metric` from the
/// merged report — the committed `BENCH_SMOKE.json` at the repository
/// root, i.e. the fail-if-slower baseline for `FE_BENCH_GATE` checks.
///
/// Returns `None` when the file, section, or key is missing, when the
/// value is `null`, or when the section was recorded under a different
/// run mode than the current one (full-sweep and smoke numbers must
/// never be compared). Call this **before** [`record`] — recording
/// rewrites the report and clobbers the baseline.
pub fn baseline(bench: &str, metric: &str) -> Option<f64> {
    let (_, merged) = report_root();
    let text = std::fs::read_to_string(merged).ok()?;
    let header = format!("\"{}\": {{", sanitize(bench));
    let section = text.split(&header).nth(1)?;
    let section = &section[..section.find('}')?];
    let mode = section.split("\"smoke\": ").nth(1)?;
    let recorded_smoke = mode.trim_start().starts_with('1');
    if recorded_smoke != smoke_mode() {
        return None;
    }
    let value = section
        .split(&format!("\"{}\": ", sanitize(metric)))
        .nth(1)?;
    let end = value.find([',', '\n', '}']).unwrap_or(value.len());
    value[..end].trim().parse().ok()
}

/// Rebuilds the merged report from every fragment present.
fn merge(dir: &PathBuf, path: PathBuf) -> PathBuf {
    let mut fragments: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("read bench_smoke dir")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_stem()?.to_str()?.to_string();
            if path.extension()?.to_str()? != "json" {
                return None;
            }
            Some((name, std::fs::read_to_string(&path).ok()?))
        })
        .collect();
    fragments.sort();

    let mut out = String::from("{\n");
    for (i, (name, body)) in fragments.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("  \"{name}\": {body}"));
    }
    out.push_str("\n}\n");
    std::fs::write(&path, out).expect("write BENCH_SMOKE.json");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_roundtrip() {
        // Redirect output to a scratch root: a unit-test run must never
        // rewrite the repository's real BENCH_SMOKE.json.
        let scratch = std::env::temp_dir().join(format!("fe-smoke-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        std::env::set_var("FE_BENCH_SMOKE_OUT", &scratch);
        let path = record(
            "unit-test-bench",
            &[("throughput_rps", 1234.5678), ("p50_us", 42.0)],
        );
        let merged = std::fs::read_to_string(&path).unwrap();
        assert!(merged.contains("\"unit-test-bench\""), "{merged}");
        assert!(merged.contains("\"throughput_rps\": 1234.568"), "{merged}");
        assert!(merged.contains("\"p50_us\": 42"), "{merged}");
        assert!(merged.contains("\"smoke\":"), "{merged}");
        // Well-formed enough for a JSON parser: balanced braces, no
        // trailing commas (spot-checks; the format is hand-rolled).
        assert_eq!(
            merged.matches('{').count(),
            merged.matches('}').count(),
            "{merged}"
        );
        assert!(!merged.contains(",\n}"), "{merged}");
        // A second bench merges alongside, idempotently.
        let path2 = record("unit-test-bench2", &[("x", f64::NAN)]);
        let merged2 = std::fs::read_to_string(&path2).unwrap();
        assert!(merged2.contains("\"unit-test-bench\""));
        assert!(merged2.contains("\"x\": null"));
        // The baseline reader round-trips what record wrote (run modes
        // match: both sides of the round trip saw the same env).
        assert_eq!(baseline("unit-test-bench", "p50_us"), Some(42.0));
        assert_eq!(
            baseline("unit-test-bench", "throughput_rps"),
            Some(1234.568)
        );
        // Missing key, null value, missing bench: all `None`.
        assert_eq!(baseline("unit-test-bench", "nope"), None);
        assert_eq!(baseline("unit-test-bench2", "x"), None);
        assert_eq!(baseline("no-such-bench", "p50_us"), None);
        std::env::remove_var("FE_BENCH_SMOKE_OUT");
        std::fs::remove_dir_all(&scratch).unwrap();
    }
}
