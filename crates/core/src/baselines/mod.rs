//! Classical fuzzy-extractor constructions, used as comparison baselines
//! for the paper's Chebyshev sketch (related work, Sec. VIII).
//!
//! * [`CodeOffsetSketch`] / [`BinaryFuzzyExtractor`] — the code-offset
//!   construction over the Hamming metric (Juels–Wattenberg fuzzy
//!   commitment; Dodis et al. syndrome sketch), instantiated with BCH
//!   codes from `fe-ecc`.
//! * [`FuzzyVault`] — the Juels–Sudan fuzzy vault over the set-difference
//!   metric, decoded with Berlekamp–Welch.

mod code_offset;
mod fuzzy_vault;

pub use code_offset::{BinaryFuzzyExtractor, BinaryHelperData, CodeOffsetSketch};
pub use fuzzy_vault::{FuzzyVault, Vault};
