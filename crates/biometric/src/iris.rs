//! An iris-code-style bit-string biometric model for the Hamming-metric
//! baselines (code-offset sketch / fuzzy commitment).

use fe_metrics::BitVec;
use rand::Rng;
use rand::RngCore;

/// Generates fixed-length biometric bit strings with independent per-bit
/// flip noise between presentations — the standard abstraction of iris
/// codes in the fuzzy-extractor literature.
///
/// ```rust
/// use fe_biometric::IrisCodeModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let model = IrisCodeModel::new(1023, 0.01);
/// let enrolled = model.random_code(&mut rng);
/// let reading = model.genuine_reading(&enrolled, &mut rng);
/// let flips = enrolled.xor_weight(&reading);
/// assert!(flips < 40); // ~10 expected at 1% flip rate
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrisCodeModel {
    bits: usize,
    flip_prob: f64,
}

impl IrisCodeModel {
    /// Creates a model producing `bits`-bit codes with per-bit flip
    /// probability `flip_prob` between genuine presentations.
    ///
    /// # Panics
    /// Panics if `flip_prob` is outside `[0, 1]` or `bits == 0`.
    pub fn new(bits: usize, flip_prob: f64) -> Self {
        assert!(bits > 0, "need at least one bit");
        assert!((0.0..=1.0).contains(&flip_prob), "probability in [0,1]");
        IrisCodeModel { bits, flip_prob }
    }

    /// Code length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Per-bit flip probability.
    pub fn flip_prob(&self) -> f64 {
        self.flip_prob
    }

    /// Draws a uniformly random enrolled code.
    pub fn random_code<R: RngCore + ?Sized>(&self, rng: &mut R) -> BitVec {
        BitVec::from_fn(self.bits, |_| rng.gen_bool(0.5))
    }

    /// A genuine presentation: each bit of `enrolled` flips independently
    /// with probability `flip_prob`.
    pub fn genuine_reading<R: RngCore + ?Sized>(&self, enrolled: &BitVec, rng: &mut R) -> BitVec {
        assert_eq!(enrolled.len(), self.bits, "code length mismatch");
        let mut out = enrolled.clone();
        for i in 0..self.bits {
            if rng.gen_bool(self.flip_prob) {
                out.flip(i);
            }
        }
        out
    }

    /// An impostor presentation: an unrelated random code.
    pub fn impostor_reading<R: RngCore + ?Sized>(&self, rng: &mut R) -> BitVec {
        self.random_code(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn code_length() {
        let mut r = rng();
        let m = IrisCodeModel::new(256, 0.02);
        assert_eq!(m.random_code(&mut r).len(), 256);
    }

    #[test]
    fn genuine_flip_rate_near_expectation() {
        let mut r = rng();
        let m = IrisCodeModel::new(10_000, 0.05);
        let enrolled = m.random_code(&mut r);
        let reading = m.genuine_reading(&enrolled, &mut r);
        let flips = enrolled.xor_weight(&reading);
        // Expect 500; allow ±200 (way beyond 5σ ≈ 110).
        assert!((300..700).contains(&flips), "flips={flips}");
    }

    #[test]
    fn zero_flip_prob_is_identity() {
        let mut r = rng();
        let m = IrisCodeModel::new(100, 0.0);
        let enrolled = m.random_code(&mut r);
        assert_eq!(m.genuine_reading(&enrolled, &mut r), enrolled);
    }

    #[test]
    fn impostor_is_far() {
        let mut r = rng();
        let m = IrisCodeModel::new(1000, 0.01);
        let enrolled = m.random_code(&mut r);
        let impostor = m.impostor_reading(&mut r);
        // Expected Hamming distance 500.
        let d = enrolled.xor_weight(&impostor);
        assert!(d > 350, "impostor unexpectedly close: {d}");
    }

    #[test]
    #[should_panic(expected = "code length mismatch")]
    fn length_mismatch_panics() {
        let mut r = rng();
        let m = IrisCodeModel::new(100, 0.01);
        let wrong = BitVec::zeros(99);
        m.genuine_reading(&wrong, &mut r);
    }
}
