//! The LSH-style bucket index extension, on columnar storage.

use super::store::SketchArena;
use super::{RecordId, SketchIndex};
use std::collections::HashMap;

/// LSH-style bucket index with multi-probe lookup (extension).
///
/// Each sketch coordinate is normalized onto `[0, ka)` and the first
/// `prefix_dims` coordinates are quantized into cells of width `2t + 1`;
/// the resulting cell tuple — packed into one `u64` key (see below) —
/// keys a hash bucket. A probe within cyclic distance `t` per coordinate
/// can only land in the same or an adjacent cell, so lookup probes the
/// `3^prefix_dims` neighbouring cell tuples and verifies candidates
/// against the backing [`SketchArena`] with the full conditions.
///
/// **Key packing**: cell tuples are folded mixed-radix into a `u64`
/// (`key = key · cells + cell` per coordinate, wrapping). With
/// `prefix_dims ≤ 8` the fold is a *perfect* packing whenever
/// `cells^prefix_dims` fits in 64 bits; when it wraps it degrades into a
/// hash, and a (vanishingly rare) collision merely adds candidates that
/// full verification rejects — correctness never depends on
/// injectivity. Packing replaces the former `Vec<u32>` tuple keys, which
/// allocated a fresh vector for every one of the `3^prefix_dims`
/// neighbour probes.
///
/// **Pruning power**: the candidate fraction is roughly
/// `(3·(2t+1)/ka)^prefix_dims`. At the paper's Table II parameters
/// (`ka = 400, t = 100`) each coordinate has only ~2 cells, so *no*
/// coordinate-level index can prune — the early-abort [`ScanIndex`] is
/// already optimal there. The bucket index pays off when `ka ≫ t` (small
/// relative noise), which the index ablation bench quantifies.
///
/// [`ScanIndex`]: super::ScanIndex
#[derive(Debug, Clone)]
pub struct BucketIndex {
    t: u64,
    ka: u64,
    prefix_dims: usize,
    cells: u64,
    buckets: HashMap<u64, Vec<RecordId>>,
    arena: SketchArena,
}

impl BucketIndex {
    /// Creates a bucket index keyed on the first `prefix_dims`
    /// coordinates.
    ///
    /// # Panics
    /// Panics if `prefix_dims == 0` or `prefix_dims > 8` (probe count is
    /// `3^prefix_dims`; 8 ⇒ 6561 probes, a sane ceiling).
    pub fn new(t: u64, ka: u64, prefix_dims: usize) -> Self {
        assert!(
            (1..=8).contains(&prefix_dims),
            "prefix_dims must be in 1..=8"
        );
        // Cells must all be at least t+1 wide, or a move of ≤ t could skip
        // across a sliver cell and land two cells away: give the remainder
        // its own cell only when it is big enough, otherwise merge it into
        // the last full cell.
        let width = 2 * t + 1;
        let mut cells = ka / width;
        if ka % width > t {
            cells += 1;
        }
        let cells = cells.max(1);
        BucketIndex {
            t,
            ka,
            prefix_dims,
            cells,
            buckets: HashMap::new(),
            // The prefilter plane only accelerates *full* scans; the
            // bucket index verifies hashed candidates one row at a
            // time, so a plane would be pure insert/memory overhead.
            arena: SketchArena::with_filter(t, ka, super::FilterConfig::disabled()),
        }
    }

    /// The backing arena (diagnostics and benches).
    pub fn arena(&self) -> &SketchArena {
        &self.arena
    }

    fn cell_of(&self, coord: i64) -> u64 {
        let norm = coord.rem_euclid(self.ka as i64) as u64;
        (norm / (2 * self.t + 1)).min(self.cells - 1)
    }

    /// Folds one more cell into a packed key (mixed-radix, wrapping).
    fn fold(&self, key: u64, cell: u64) -> u64 {
        key.wrapping_mul(self.cells).wrapping_add(cell)
    }

    fn key_of(&self, sketch: &[i64]) -> u64 {
        sketch
            .iter()
            .take(self.prefix_dims)
            .fold(0u64, |key, &c| self.fold(key, self.cell_of(c)))
    }

    /// Enumerates the packed keys of the `3^prefix_dims` neighbouring
    /// cell tuples of a probe. One flat `Vec<u64>` — no per-key
    /// allocations.
    fn probe_keys(&self, probe: &[i64]) -> Vec<u64> {
        let mut keys = vec![0u64];
        for &coord in probe.iter().take(self.prefix_dims) {
            let cell = self.cell_of(coord);
            let neighbours = [
                (cell + self.cells - 1) % self.cells,
                cell,
                (cell + 1) % self.cells,
            ];
            // Dedup (cells can collapse when the ring is tiny).
            let mut uniq = neighbours;
            uniq.sort_unstable();
            let uniq = match uniq {
                [a, b, c] if a == b && b == c => &uniq[..1],
                [a, b, c] if a == b || b == c => {
                    if a == b {
                        uniq[1] = c;
                    }
                    &uniq[..2]
                }
                _ => &uniq[..3],
            };
            let mut next = Vec::with_capacity(keys.len() * uniq.len());
            for &prefix in &keys {
                for &n in uniq {
                    next.push(self.fold(prefix, n));
                }
            }
            keys = next;
        }
        keys
    }

    /// Candidate records sharing a probed bucket (before full
    /// verification) — exposed for the ablation bench.
    pub fn candidates(&self, probe: &[i64]) -> Vec<RecordId> {
        let mut out = Vec::new();
        for key in self.probe_keys(probe) {
            if let Some(ids) = self.buckets.get(&key) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl SketchIndex for BucketIndex {
    fn insert(&mut self, sketch: &[i64]) -> RecordId {
        assert!(
            sketch.len() >= self.prefix_dims,
            "sketch shorter than prefix_dims"
        );
        let key = self.key_of(sketch);
        let id = self.arena.push(sketch);
        self.buckets.entry(key).or_default().push(id);
        id
    }

    fn lookup(&self, probe: &[i64]) -> Option<RecordId> {
        let normalized = self.arena.normalize_probe(probe)?;
        self.candidates(probe)
            .into_iter()
            .find(|&id| self.arena.row_matches(id, &normalized))
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId> {
        let Some(normalized) = self.arena.normalize_probe(probe) else {
            return Vec::new();
        };
        self.candidates(probe)
            .into_iter()
            .filter(|&id| self.arena.row_matches(id, &normalized))
            .collect()
    }

    fn lookup_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        // Candidates come out sorted ascending, so verifying in order
        // and stopping at the budget-th hit yields the budget lowest.
        let Some(normalized) = self.arena.normalize_probe(probe) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for id in self.candidates(probe) {
            if self.arena.row_matches(id, &normalized) {
                out.push(id);
                if out.len() == budget {
                    break;
                }
            }
        }
        out
    }

    fn lookup_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId> {
        // A small explicit subset skips the bucket probes entirely:
        // verify each subset row directly against the arena.
        let Some(normalized) = self.arena.normalize_probe(probe) else {
            return Vec::new();
        };
        if budget == 0 {
            return Vec::new();
        }
        let mut ids: Vec<RecordId> = subset.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let mut out = Vec::new();
        for id in ids {
            if self.arena.row_matches(id, &normalized) {
                out.push(id);
                if out.len() == budget {
                    break;
                }
            }
        }
        out
    }

    fn remove(&mut self, id: RecordId) -> bool {
        // Recompute the bucket key from the stored row before the
        // tombstone lands (cell quantization is invariant under the
        // arena's canonical normalization).
        let Some(sketch) = self.arena.row(id) else {
            return false;
        };
        assert!(self.arena.remove(id), "row was just live");
        let key = self.key_of(&sketch);
        if let Some(ids) = self.buckets.get_mut(&key) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.buckets.remove(&key);
            }
        }
        true
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn slots(&self) -> usize {
        self.arena.rows()
    }

    fn dim(&self) -> Option<usize> {
        self.arena.dim()
    }

    fn sketch_dim_ok(&self, dim: usize) -> bool {
        dim >= self.prefix_dims && self.arena.dim().is_none_or(|stamped| stamped == dim)
    }

    fn copy_row_into(&self, id: RecordId, out: &mut Vec<i64>) -> bool {
        self.arena.copy_row_into(id, out)
    }

    fn for_each_live(&self, f: &mut dyn FnMut(RecordId, &[i64])) {
        self.arena.for_each_live(f);
    }

    fn reserve(&mut self, additional: usize, dim: usize) {
        self.arena.reserve(additional, dim);
    }

    fn heap_bytes(&self) -> usize {
        // Arena exactly; the bucket table estimated from its shape
        // (hash-map internals are not observable without allocator
        // hooks: count key+value slots plus id-vector buffers).
        let table: usize = self
            .buckets
            .values()
            .map(|ids| ids.capacity() * std::mem::size_of::<RecordId>())
            .sum();
        let slots = self.buckets.capacity() * (8 + std::mem::size_of::<Vec<RecordId>>());
        self.arena.heap_bytes() + table + slots
    }

    fn clear(&mut self) {
        self.arena.clear();
        self.buckets.clear();
    }

    fn compact(&mut self) -> Vec<(RecordId, RecordId)> {
        let mapping = self.arena.compact();
        // Rebuild the bucket table with the dense ids: cheaper and
        // simpler than patching every id list in place.
        self.buckets.clear();
        let mut scratch = Vec::new();
        for &(_, new) in &mapping {
            assert!(self.arena.copy_row_into(new, &mut scratch));
            let key = self.key_of(&scratch);
            self.buckets.entry(key).or_default().push(new);
        }
        mapping
    }
}
