//! Signed arbitrary-precision integers, used by the extended Euclidean
//! algorithm behind [`crate::Natural::mod_inv`].

use crate::Natural;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of an [`Integer`]. Zero is canonically [`Sign::Positive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative.
    Positive,
    /// Strictly negative.
    Negative,
}

/// A signed arbitrary-precision integer (sign + magnitude).
///
/// This is a deliberately small companion to [`Natural`], providing only the
/// operations required by Bézout-coefficient bookkeeping: negation, addition,
/// subtraction, multiplication and comparison.
///
/// ```rust
/// use fe_bigint::{Integer, Natural};
///
/// let a = Integer::from(-5i64);
/// let b = Integer::from(3i64);
/// assert_eq!(&a + &b, Integer::from(-2i64));
/// assert_eq!(&a * &b, Integer::from(-15i64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Integer {
    sign: Sign,
    magnitude: Natural,
}

impl Integer {
    /// The value `0`.
    pub fn zero() -> Self {
        Integer {
            sign: Sign::Positive,
            magnitude: Natural::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Integer::from_natural(Natural::one())
    }

    /// A non-negative integer from a [`Natural`].
    pub fn from_natural(n: Natural) -> Self {
        Integer {
            sign: Sign::Positive,
            magnitude: n,
        }
    }

    /// Builds an integer from an explicit sign and magnitude.
    /// A zero magnitude is normalized to positive sign.
    pub fn with_sign(sign: Sign, magnitude: Natural) -> Self {
        if magnitude.is_zero() {
            Integer::zero()
        } else {
            Integer { sign, magnitude }
        }
    }

    /// The sign (zero is positive).
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &Natural {
        &self.magnitude
    }

    /// `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Canonical representative modulo `m`, in `[0, m)`.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn mod_floor(&self, m: &Natural) -> Natural {
        let r = self.magnitude.rem_nat(m);
        match self.sign {
            Sign::Positive => r,
            Sign::Negative => {
                if r.is_zero() {
                    r
                } else {
                    m - &r
                }
            }
        }
    }
}

impl From<i64> for Integer {
    fn from(v: i64) -> Self {
        if v < 0 {
            Integer::with_sign(Sign::Negative, Natural::from(v.unsigned_abs()))
        } else {
            Integer::from_natural(Natural::from(v as u64))
        }
    }
}

impl From<Natural> for Integer {
    fn from(n: Natural) -> Self {
        Integer::from_natural(n)
    }
}

impl Neg for &Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        match self.sign {
            _ if self.is_zero() => Integer::zero(),
            Sign::Positive => Integer::with_sign(Sign::Negative, self.magnitude.clone()),
            Sign::Negative => Integer::with_sign(Sign::Positive, self.magnitude.clone()),
        }
    }
}

impl Add<&Integer> for &Integer {
    type Output = Integer;
    fn add(self, rhs: &Integer) -> Integer {
        match (self.sign, rhs.sign) {
            (a, b) if a == b => Integer::with_sign(a, &self.magnitude + &rhs.magnitude),
            _ => match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => Integer::zero(),
                Ordering::Greater => {
                    Integer::with_sign(self.sign, &self.magnitude - &rhs.magnitude)
                }
                Ordering::Less => Integer::with_sign(rhs.sign, &rhs.magnitude - &self.magnitude),
            },
        }
    }
}

impl Sub<&Integer> for &Integer {
    type Output = Integer;
    fn sub(self, rhs: &Integer) -> Integer {
        self + &(-rhs)
    }
}

impl Mul<&Integer> for &Integer {
    type Output = Integer;
    fn mul(self, rhs: &Integer) -> Integer {
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        Integer::with_sign(sign, &self.magnitude * &rhs.magnitude)
    }
}

impl Ord for Integer {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Positive, Sign::Negative) => Ordering::Greater,
            (Sign::Negative, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.magnitude.cmp(&other.magnitude),
            (Sign::Negative, Sign::Negative) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl PartialOrd for Integer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl fmt::Debug for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Integer({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Integer {
        Integer::from(v)
    }

    #[test]
    fn zero_is_positive_canonical() {
        let z = Integer::with_sign(Sign::Negative, Natural::zero());
        assert_eq!(z.sign(), Sign::Positive);
        assert!(z.is_zero());
        assert!(!z.is_negative());
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(&i(5) + &i(-3), i(2));
        assert_eq!(&i(3) + &i(-5), i(-2));
        assert_eq!(&i(-3) + &i(-5), i(-8));
        assert_eq!(&i(5) + &i(-5), Integer::zero());
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(&i(5) - &i(8), i(-3));
        assert_eq!(-&i(7), i(-7));
        assert_eq!(-&Integer::zero(), Integer::zero());
    }

    #[test]
    fn mul_sign_rules() {
        assert_eq!(&i(-4) * &i(-6), i(24));
        assert_eq!(&i(-4) * &i(6), i(-24));
        assert_eq!(&i(4) * &i(0), Integer::zero());
    }

    #[test]
    fn ordering() {
        assert!(i(-10) < i(-1));
        assert!(i(-1) < i(0));
        assert!(i(0) < i(1));
        assert!(i(1) < i(10));
    }

    #[test]
    fn mod_floor_negative() {
        let m = Natural::from(7u64);
        assert_eq!(i(-1).mod_floor(&m), Natural::from(6u64));
        assert_eq!(i(-7).mod_floor(&m), Natural::zero());
        assert_eq!(i(15).mod_floor(&m), Natural::from(1u64));
        assert_eq!(i(-15).mod_floor(&m), Natural::from(6u64));
    }

    #[test]
    fn display() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(i(42).to_string(), "42");
        assert_eq!(Integer::zero().to_string(), "0");
    }
}
