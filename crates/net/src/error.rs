//! Transport error type and the wire error-code registry.
//!
//! Two layers of failure are kept distinct:
//!
//! * [`NetError`] — everything that can go wrong *locally* on a
//!   connection: socket I/O, framing violations (bad CRC, oversize,
//!   truncation, mid-frame stalls), handshake mismatches, and envelope
//!   decoding. These are connection-scoped; most of them mean the byte
//!   stream can no longer be trusted and the connection is closed.
//! * [`WireError`] — an error the *peer* reported inside a well-formed
//!   response frame: the server ran the request and it failed
//!   ([`ErrorCode::NoMatch`], [`ErrorCode::Overloaded`], …). The
//!   connection stays healthy; the next request proceeds normally.
//!
//! The numeric registry ([`ErrorCode`]) is part of the wire contract —
//! see `PROTOCOL.md` § *Error-code registry*. Codes are append-only:
//! a code is never reused for a different meaning within a protocol
//! version.

use fe_core::codec::Fingerprint;
use fe_protocol::ProtocolError;
use std::error::Error;
use std::fmt;

/// Wire-level error codes: the `status` byte of an error response.
///
/// `0` is reserved for success and never appears here. Every code maps
/// 1:1 onto the [`ProtocolError`] variant the server produced; codes
/// are append-only within a protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// No enrolled record matches the probe (`ProtocolError::NoMatch`).
    NoMatch = 1,
    /// More than one record matches where exactly one was required
    /// (`ProtocolError::AmbiguousMatch`).
    AmbiguousMatch = 2,
    /// The user id is already enrolled (`ProtocolError::DuplicateUser`).
    DuplicateUser = 3,
    /// The biometric is already enrolled under another id
    /// (`ProtocolError::DuplicateBiometric`).
    DuplicateBiometric = 4,
    /// The claimed identity is not enrolled (`ProtocolError::UnknownUser`).
    UnknownUser = 5,
    /// Expired, unknown, or replayed challenge session
    /// (`ProtocolError::UnknownSession`).
    UnknownSession = 6,
    /// Challenge response signature failed (`ProtocolError::BadSignature`).
    BadSignature = 7,
    /// The request decoded as a frame but not as a valid request
    /// message (`ProtocolError::Malformed`).
    Malformed = 8,
    /// The underlying sketch machinery failed (`ProtocolError::Sketch`).
    Sketch = 9,
    /// A durable artifact failed to decode server-side
    /// (`ProtocolError::Codec`).
    Codec = 10,
    /// The server's enrollment store failed (`ProtocolError::Storage`).
    Storage = 11,
    /// The admission queue is full: the request was shed, not queued.
    /// Back off and retry (`ProtocolError::Overloaded`).
    Overloaded = 12,
}

impl ErrorCode {
    /// Decodes a wire status byte (`0` and unknown values yield `None`).
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::NoMatch,
            2 => ErrorCode::AmbiguousMatch,
            3 => ErrorCode::DuplicateUser,
            4 => ErrorCode::DuplicateBiometric,
            5 => ErrorCode::UnknownUser,
            6 => ErrorCode::UnknownSession,
            7 => ErrorCode::BadSignature,
            8 => ErrorCode::Malformed,
            9 => ErrorCode::Sketch,
            10 => ErrorCode::Codec,
            11 => ErrorCode::Storage,
            12 => ErrorCode::Overloaded,
            _ => return None,
        })
    }

    /// The status byte this code is encoded as.
    pub fn as_u8(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::NoMatch => "NO_MATCH",
            ErrorCode::AmbiguousMatch => "AMBIGUOUS_MATCH",
            ErrorCode::DuplicateUser => "DUPLICATE_USER",
            ErrorCode::DuplicateBiometric => "DUPLICATE_BIOMETRIC",
            ErrorCode::UnknownUser => "UNKNOWN_USER",
            ErrorCode::UnknownSession => "UNKNOWN_SESSION",
            ErrorCode::BadSignature => "BAD_SIGNATURE",
            ErrorCode::Malformed => "MALFORMED",
            ErrorCode::Sketch => "SKETCH",
            ErrorCode::Codec => "CODEC",
            ErrorCode::Storage => "STORAGE",
            ErrorCode::Overloaded => "OVERLOADED",
        };
        f.write_str(name)
    }
}

/// An error the peer reported inside a well-formed response: code from
/// the registry plus a human-readable detail string (possibly empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The registry code.
    pub code: ErrorCode,
    /// Server-rendered detail (the `Display` of the underlying
    /// [`ProtocolError`]; informational only — dispatch on `code`).
    pub detail: String,
}

impl WireError {
    /// Maps a server-side [`ProtocolError`] to its wire representation.
    pub fn from_protocol(err: &ProtocolError) -> WireError {
        let code = match err {
            ProtocolError::NoMatch => ErrorCode::NoMatch,
            ProtocolError::AmbiguousMatch => ErrorCode::AmbiguousMatch,
            ProtocolError::DuplicateUser(_) => ErrorCode::DuplicateUser,
            ProtocolError::DuplicateBiometric(_) => ErrorCode::DuplicateBiometric,
            ProtocolError::UnknownUser(_) => ErrorCode::UnknownUser,
            ProtocolError::UnknownSession => ErrorCode::UnknownSession,
            ProtocolError::BadSignature => ErrorCode::BadSignature,
            ProtocolError::Malformed(_) => ErrorCode::Malformed,
            ProtocolError::Sketch(_) => ErrorCode::Sketch,
            ProtocolError::Codec(_) => ErrorCode::Codec,
            ProtocolError::Storage(_) => ErrorCode::Storage,
            ProtocolError::Overloaded => ErrorCode::Overloaded,
        };
        WireError {
            code,
            detail: err.to_string(),
        }
    }

    /// `true` when the server shed this request under load — the one
    /// error a client should treat as "back off and retry".
    pub fn is_overloaded(&self) -> bool {
        self.code == ErrorCode::Overloaded
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.detail.is_empty() {
            write!(f, "{}", self.code)
        } else {
            write!(f, "{}: {}", self.code, self.detail)
        }
    }
}

impl Error for WireError {}

/// Errors raised by the framed TCP transport.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level I/O failure.
    Io(std::io::Error),
    /// A framing violation: the byte stream can no longer be trusted
    /// and the connection must be closed. The payload names the rule
    /// that was broken (truncated frame, zero-length frame, mid-frame
    /// stall, …).
    BadFrame(&'static str),
    /// The frame length prefix exceeds the negotiated maximum — either
    /// an attack or a desynchronized stream; fatal either way.
    Oversize {
        /// Length the prefix claimed.
        claimed: usize,
        /// The enforced ceiling.
        max: usize,
    },
    /// The frame payload does not match its CRC32.
    CrcMismatch {
        /// Checksum carried by the frame.
        expected: u32,
        /// Checksum of the bytes actually received.
        found: u32,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our version.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// The peer's parameter fingerprint differs — same protocol, but a
    /// sketch under one parameter set is meaningless under another, so
    /// the handshake fails fast instead of letting every probe miss.
    FingerprintMismatch {
        /// Our parameters' fingerprint.
        ours: Fingerprint,
        /// The fingerprint the peer announced.
        theirs: Fingerprint,
    },
    /// The handshake reply was not a valid `FENH` message.
    BadHandshake(&'static str),
    /// The peer closed the connection (at a frame boundary).
    ConnectionClosed,
    /// A response arrived for a different request id than the one in
    /// flight — the connection is desynchronized.
    Desync {
        /// The id we were waiting for.
        expected: u64,
        /// The id the response carried.
        found: u64,
    },
    /// A well-formed response of the wrong kind for the request (e.g. a
    /// boolean where a challenge was expected).
    UnexpectedResponse(&'static str),
    /// The peer reported an error for this request; the connection
    /// itself is healthy.
    Remote(WireError),
    /// A payload failed to decode as a protocol message client-side.
    Protocol(ProtocolError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket i/o: {e}"),
            NetError::BadFrame(what) => write!(f, "framing violation: {what}"),
            NetError::Oversize { claimed, max } => {
                write!(f, "frame length {claimed} exceeds the {max}-byte limit")
            }
            NetError::CrcMismatch { expected, found } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, payload {found:#010x}"
                )
            }
            NetError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            NetError::FingerprintMismatch { ours, theirs } => write!(
                f,
                "parameter fingerprint mismatch: ours {ours}, peer {theirs}"
            ),
            NetError::BadHandshake(what) => write!(f, "bad handshake: {what}"),
            NetError::ConnectionClosed => write!(f, "peer closed the connection"),
            NetError::Desync { expected, found } => write!(
                f,
                "response id desync: expected request {expected}, got {found}"
            ),
            NetError::UnexpectedResponse(what) => {
                write!(f, "unexpected response kind: {what}")
            }
            NetError::Remote(e) => write!(f, "server error: {e}"),
            NetError::Protocol(e) => write!(f, "payload decode: {e}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Remote(e) => Some(e),
            NetError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> NetError {
        NetError::Protocol(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        NetError::Remote(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_roundtrips_through_its_byte() {
        for byte in 1u8..=12 {
            let code = ErrorCode::from_u8(byte).expect("registered code");
            assert_eq!(code.as_u8(), byte);
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(13), None);
        assert_eq!(ErrorCode::from_u8(255), None);
    }

    #[test]
    fn every_protocol_error_maps_to_a_code() {
        use fe_core::codec::CodecError;
        use fe_core::SketchError;
        let cases: Vec<(ProtocolError, ErrorCode)> = vec![
            (ProtocolError::NoMatch, ErrorCode::NoMatch),
            (ProtocolError::AmbiguousMatch, ErrorCode::AmbiguousMatch),
            (
                ProtocolError::DuplicateUser("a".into()),
                ErrorCode::DuplicateUser,
            ),
            (
                ProtocolError::DuplicateBiometric("a".into()),
                ErrorCode::DuplicateBiometric,
            ),
            (
                ProtocolError::UnknownUser("a".into()),
                ErrorCode::UnknownUser,
            ),
            (ProtocolError::UnknownSession, ErrorCode::UnknownSession),
            (ProtocolError::BadSignature, ErrorCode::BadSignature),
            (ProtocolError::Malformed("x"), ErrorCode::Malformed),
            (
                ProtocolError::Sketch(SketchError::OutOfRange),
                ErrorCode::Sketch,
            ),
            (ProtocolError::Codec(CodecError::BadMagic), ErrorCode::Codec),
            (ProtocolError::Storage("io".into()), ErrorCode::Storage),
            (ProtocolError::Overloaded, ErrorCode::Overloaded),
        ];
        for (err, code) in cases {
            let wire = WireError::from_protocol(&err);
            assert_eq!(wire.code, code, "{err}");
            assert_eq!(wire.detail, err.to_string());
        }
        assert!(WireError::from_protocol(&ProtocolError::Overloaded).is_overloaded());
        assert!(!WireError::from_protocol(&ProtocolError::NoMatch).is_overloaded());
    }

    #[test]
    fn display_is_informative() {
        let e = NetError::Oversize {
            claimed: 1 << 30,
            max: 1 << 20,
        };
        assert!(e.to_string().contains("exceeds"));
        let w = WireError {
            code: ErrorCode::Overloaded,
            detail: String::new(),
        };
        assert_eq!(w.to_string(), "OVERLOADED");
    }
}
