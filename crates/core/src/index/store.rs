//! The columnar sketch storage engine behind every index.
//!
//! # Why not `Vec<Option<Vec<i64>>>`
//!
//! The paper's identification cost is dominated by the per-record integer
//! scan over conditions (1)–(4); at scale that scan is *memory-bound*,
//! not compute-bound. Row-of-pointers storage fights the hardware three
//! ways: one heap allocation and one pointer chase per record, 8 bytes
//! per coordinate when the ring (`ka = 400` at the paper's parameters)
//! fits in 2, and a cloned copy of every sketch on each snapshot or
//! compaction pass. [`SketchArena`] fixes all three:
//!
//! * **One contiguous buffer.** All sketches live in a single
//!   dimension-stamped column buffer (`rows × dim` cells, row-major), so
//!   the early-abort scan walks memory linearly and the prefetcher wins.
//! * **Width-adaptive cells.** Every stored coordinate is the canonical
//!   ring representative (minimal signed residue mod `ka`), so the cell
//!   type — `i16`, `i32` or `i64` — is chosen from `ka` at construction:
//!   paper parameters take 2 bytes/coordinate instead of 8, quadrupling
//!   the number of records per cache line.
//! * **Tombstone bitmap.** Liveness is one bit per row (not an `Option`
//!   discriminant per record), removal is O(1), and
//!   [`SketchArena::compact`] reclaims dead rows in place by sliding
//!   live rows down the same buffer.
//! * **Borrowing iteration.** [`SketchArena::for_each_live`] streams
//!   rows through a caller-visible `&[i64]` scratch row, so snapshot and
//!   compaction passes never clone the whole population.
//!
//! The per-coordinate test itself lives here too, as a slice kernel
//! (`rows_match`) dispatched per cell width: normalization makes the
//! cyclic-distance check branch-free (`min(d, ka − d) ≤ t` with no
//! `%`), which is exactly the [`crate::conditions::cyclic_close`]
//! predicate — the equivalence is property-tested in
//! `tests/properties.rs`.
//!
//! # The two-phase vectorized scan
//!
//! On the paper's ring (`ka < 2¹⁵`, `i16` cells) the arena additionally
//! maintains a **prefilter plane**: the leading `F` (default 8)
//! coordinates of every row stored *dimension-major* — one contiguous
//! lane per dimension, four 16-bit row values packed per `u64` word —
//! so the cyclic-distance-≤`t` test runs as packed-lane SWAR (or 16
//! lanes at a time under runtime-dispatched AVX2). Per-coordinate pass
//! probability is ≈ `(2t+1)/ka` ≈ ½ at paper parameters, so eight
//! filter dimensions reject ~255/256 rows in the vector pass; the
//! sparse survivors get exact verification of the *remaining*
//! dimensions on the row-major buffer. See [`FilterConfig`] for the
//! knob and `DESIGN.md` for the lane math; rings whose cells are wider
//! than `i16` bypass the plane and use the scalar kernel unchanged.

use super::RecordId;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cell type a [`SketchArena`] stores coordinates in, chosen from the
/// ring circumference `ka` at construction (see
/// [`CellWidth::for_ring`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellWidth {
    /// 2-byte cells: `ka < 2¹⁵` (the paper's `ka = 400` lands here).
    I16,
    /// 4-byte cells: `ka < 2³¹`.
    I32,
    /// 8-byte cells: everything else.
    I64,
}

impl CellWidth {
    /// The narrowest cell that can hold every canonical representative
    /// of `Z_ka` (values in `[−ka/2, ka/2]`).
    pub fn for_ring(ka: u64) -> CellWidth {
        if ka < 1 << 15 {
            CellWidth::I16
        } else if ka < 1 << 31 {
            CellWidth::I32
        } else {
            CellWidth::I64
        }
    }

    /// Bytes per stored coordinate.
    pub fn cell_bytes(self) -> usize {
        match self {
            CellWidth::I16 => 2,
            CellWidth::I32 => 4,
            CellWidth::I64 => 8,
        }
    }
}

/// A coordinate cell: the width-generic bound of the match kernel.
trait Cell: Copy {
    fn widen(self) -> i64;
    fn narrow(v: i64) -> Self;
    /// `|a − b|` as a `u64`, exact for every canonical value of this
    /// width. Narrow cells cannot overflow an `i64` subtraction; `i64`
    /// cells can (canonical values reach `±(2⁶³ − 1)` when
    /// `ka > 2⁶³`), so only that width pays for an `i128` widen.
    fn abs_diff_cells(a: Self, b: Self) -> u64;
}

impl Cell for i16 {
    fn widen(self) -> i64 {
        i64::from(self)
    }
    fn narrow(v: i64) -> i16 {
        v as i16
    }
    fn abs_diff_cells(a: i16, b: i16) -> u64 {
        (i64::from(a) - i64::from(b)).unsigned_abs()
    }
}

impl Cell for i32 {
    fn widen(self) -> i64 {
        i64::from(self)
    }
    fn narrow(v: i64) -> i32 {
        v as i32
    }
    fn abs_diff_cells(a: i32, b: i32) -> u64 {
        (i64::from(a) - i64::from(b)).unsigned_abs()
    }
}

impl Cell for i64 {
    fn widen(self) -> i64 {
        self
    }
    fn narrow(v: i64) -> i64 {
        v
    }
    fn abs_diff_cells(a: i64, b: i64) -> u64 {
        (i128::from(a) - i128::from(b)).unsigned_abs() as u64
    }
}

/// The one column buffer, typed by the arena's cell width.
#[derive(Debug, Clone)]
enum Cells {
    I16(Vec<i16>),
    I32(Vec<i32>),
    I64(Vec<i64>),
}

impl Cells {
    fn with_capacity(width: CellWidth, cells: usize) -> Cells {
        match width {
            CellWidth::I16 => Cells::I16(Vec::with_capacity(cells)),
            CellWidth::I32 => Cells::I32(Vec::with_capacity(cells)),
            CellWidth::I64 => Cells::I64(Vec::with_capacity(cells)),
        }
    }

    fn capacity_bytes(&self) -> usize {
        match self {
            Cells::I16(v) => v.capacity() * 2,
            Cells::I32(v) => v.capacity() * 4,
            Cells::I64(v) => v.capacity() * 8,
        }
    }

    fn reserve(&mut self, cells: usize) {
        match self {
            Cells::I16(v) => v.reserve(cells),
            Cells::I32(v) => v.reserve(cells),
            Cells::I64(v) => v.reserve(cells),
        }
    }

    fn clear(&mut self) {
        match self {
            Cells::I16(v) => v.clear(),
            Cells::I32(v) => v.clear(),
            Cells::I64(v) => v.clear(),
        }
    }

    fn truncate(&mut self, cells: usize) {
        match self {
            Cells::I16(v) => v.truncate(cells),
            Cells::I32(v) => v.truncate(cells),
            Cells::I64(v) => v.truncate(cells),
        }
    }

    fn len_cells(&self) -> usize {
        match self {
            Cells::I16(v) => v.len(),
            Cells::I32(v) => v.len(),
            Cells::I64(v) => v.len(),
        }
    }

    /// The column buffer as little-endian bytes, in storage order —
    /// the sealed-segment frame payload.
    fn to_le_bytes(&self) -> Vec<u8> {
        match self {
            Cells::I16(v) => v.iter().flat_map(|c| c.to_le_bytes()).collect(),
            Cells::I32(v) => v.iter().flat_map(|c| c.to_le_bytes()).collect(),
            Cells::I64(v) => v.iter().flat_map(|c| c.to_le_bytes()).collect(),
        }
    }

    /// Rebuilds a column buffer from little-endian bytes. `None` when
    /// the byte count is not a whole number of cells.
    fn from_le_bytes(width: CellWidth, bytes: &[u8]) -> Option<Cells> {
        if !bytes.len().is_multiple_of(width.cell_bytes()) {
            return None;
        }
        Some(match width {
            CellWidth::I16 => Cells::I16(
                bytes
                    .chunks_exact(2)
                    .map(|b| i16::from_le_bytes([b[0], b[1]]))
                    .collect(),
            ),
            CellWidth::I32 => Cells::I32(
                bytes
                    .chunks_exact(4)
                    .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                    .collect(),
            ),
            CellWidth::I64 => Cells::I64(
                bytes
                    .chunks_exact(8)
                    .map(|b| i64::from_le_bytes(b.try_into().expect("chunk of 8")))
                    .collect(),
            ),
        })
    }
}

/// How (and whether) a [`SketchArena`] builds its SWAR/SIMD prefilter
/// plane for the conditions (1)–(4) scan, and how a scan is allowed to
/// use the machine (verify block size, multi-core fan-out).
///
/// The plane stores the leading [`PlaneDepth`] coordinates of every
/// row dimension-major (one contiguous packed lane per dimension) so
/// the per-coordinate cyclic test vectorizes; survivors are
/// exact-verified on the remaining coordinates. It only exists on
/// `i16`-cell rings (`ka < 2¹⁵` — the paper's parameters); wider rings
/// always use the scalar kernel, whatever this config says.
///
/// Like [`CellWidth`], this is a lookup accelerator knob: it never
/// changes match results (property-tested in `tests/properties.rs`)
/// and is excluded from durable-storage fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// How many leading coordinates the plane keeps (see
    /// [`PlaneDepth`]). Resolved once per arena, clamped to the sketch
    /// dimension.
    pub depth: PlaneDepth,
    /// Which vector kernel scans the plane.
    pub kernel: FilterKernel,
    /// Rows per phase-1/phase-2 super-block: the scan computes phase-1
    /// candidate masks for this many rows ahead — software-prefetching
    /// each survivor's verify cells as its mask comes out — before
    /// exact-verifying the group, hiding phase-2 cache misses behind
    /// phase-1 compute. Rounded to a multiple of 64 and clamped to
    /// `64..=256`; default [`FilterConfig::DEFAULT_BLOCK_ROWS`] (the
    /// `storage_ablation` bench sweeps 64/128/256).
    pub block_rows: usize,
    /// Multi-core fan-out policy for arena sweeps.
    pub parallel: ParallelConfig,
    /// Lane width of the plane cells (see [`PlaneWidth`]): 16-bit exact
    /// residues (4 rows per word) or quantized 8-bit buckets (8 rows
    /// per word, over-accepting; phase 2 restores exactness).
    pub width: PlaneWidth,
}

/// Prefilter plane depth: how many leading coordinates get a packed
/// lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaneDepth {
    /// Choose per arena from the ring's per-dimension rejection rate:
    /// a coordinate passes with probability `(2·min(t, ka/2)+1)/ka`,
    /// and lanes are added until the expected survivor rate clears
    /// 1/128 — past that, another lane's phase-1 cost (memory + ops on
    /// *every* row) outweighs the phase-2 work it removes. Small rings
    /// need fewer lanes; sparse-rejection rings get deeper planes, up
    /// to [`FilterConfig::MAX_ADAPTIVE_DIMS`]. Resolves to 0 (no
    /// plane) when `2t+1 ≥ ka` — every coordinate always passes, so a
    /// plane could never reject anything. At the paper's `t = 100`,
    /// `ka = 400` this resolves to 8, the previously hard-coded depth.
    #[default]
    Adaptive,
    /// Exactly this many lanes; `Fixed(0)` disables the prefilter.
    Fixed(usize),
}

/// Lane width of a [`FilterConfig`] prefilter plane.
///
/// The 16-bit plane stores each leading coordinate's biased residue
/// exactly, so its phase-1 test is exact on the plane dimensions. The
/// 8-bit plane packs twice as many rows per word by storing
/// *conservatively quantized* residues instead: `bucket = residue / q`
/// with `q = ⌈ka/256⌉` (the smallest divisor giving ≤ 256 buckets) and
/// a quantized threshold `t_q = ⌈t'/q⌉ + 1` that over-accepts by
/// construction — `|bucket_a − bucket_b|` cyclic over `⌈ka/q⌉` buckets
/// never exceeds `⌈|a − b|_cyc / q⌉ + 1` — so every true match
/// survives phase 1 and phase 2's exact verify (which re-checks *all*
/// coordinates under a byte plane) keeps results bit-identical to the
/// scalar kernel. Speed knob only, like [`FilterKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaneWidth {
    /// Pick per arena: the byte plane when the ring is eligible
    /// (`2·t_q + 1 < ⌈ka/q⌉` — a quantized lane can still reject) and
    /// its modeled plane traffic (adaptive depth × 1 byte/row) does not
    /// exceed the 16-bit plane's (depth × 2 bytes/row); the 16-bit
    /// plane otherwise. At the paper ring (`t = 100, ka = 400`, `q = 2`)
    /// this picks the byte plane. Never changes results, only speed.
    #[default]
    Auto,
    /// Pin the exact 16-bit plane (4 rows per word).
    U16,
    /// Request the quantized 8-bit plane (8 rows per word). Rings where
    /// quantization leaves no rejection power (`2·t_q + 1 ≥ ⌈ka/q⌉`)
    /// fall back to the 16-bit plane — a plane that cannot reject is
    /// pure overhead, whatever the knob says.
    U8,
}

/// The vector kernel that scans a [`FilterConfig`] prefilter plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterKernel {
    /// Runtime dispatch, widest first (checked once via
    /// `is_x86_feature_detected!`): AVX-512 (`avx512f` + `avx512bw`),
    /// then AVX2, then portable SWAR; NEON on aarch64.
    #[default]
    Auto,
    /// Force the portable SWAR path (4 × 16-bit lanes per `u64` word,
    /// no `unsafe`) even where SIMD is available — the bench ablation
    /// uses this to separate SWAR from SIMD wins.
    Swar,
    /// Cap dispatch at AVX2 even where AVX-512 is available (falls back
    /// to SWAR off x86-64) — the ablation knob that separates the
    /// 256-bit from the 512-bit win.
    Avx2,
}

/// When (and how wide) arena sweeps fan out across the shared worker
/// pool. The parallel block-sweep splits the liveness bitmap's 64-row
/// blocks into contiguous chunks; results are bit-identical to the
/// sequential sweep (lowest-id match wins, verified by proptest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Minimum rows in the swept range before fanning out; below this
    /// the pool dispatch overhead outweighs the sweep itself.
    pub min_rows: usize,
    /// Upper bound on participating threads (`0` = the whole pool).
    /// `1` forces the sequential sweep.
    pub max_threads: usize,
}

impl ParallelConfig {
    /// Never fan out (the sequential sweep, exactly as before).
    pub fn disabled() -> ParallelConfig {
        ParallelConfig {
            min_rows: usize::MAX,
            max_threads: 1,
        }
    }

    /// Fan out regardless of size, on at most `max_threads` threads —
    /// the test/bench knob for exercising the parallel path on small
    /// arenas.
    pub fn forced(max_threads: usize) -> ParallelConfig {
        ParallelConfig {
            min_rows: 0,
            max_threads,
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            // A 128k-row i16 sweep is ~100 µs vectorized — comfortably
            // above the pooled fan-out cost (a few µs). The threshold
            // doubled when the quantized byte plane halved phase-1
            // traffic per row (the `sweep_policy` bench gates parallel
            // vs sequential at 10⁶ rows, far past this break-even).
            min_rows: 1 << 17,
            max_threads: 0,
        }
    }
}

impl FilterConfig {
    /// Ceiling on [`PlaneDepth::Adaptive`] lanes: past 16 dimensions
    /// the plane's memory traffic grows faster than any realistic
    /// rejection gain.
    pub const MAX_ADAPTIVE_DIMS: usize = 16;

    /// Default [`FilterConfig::block_rows`]: picked by the
    /// `storage_ablation` block-size sweep (128 rows keeps the
    /// prefetch window ahead of the verify loop without thrashing L1).
    pub const DEFAULT_BLOCK_ROWS: usize = 128;

    /// A disabled prefilter: every lookup takes the scalar early-abort
    /// kernel, as before the plane existed.
    pub fn disabled() -> FilterConfig {
        FilterConfig {
            depth: PlaneDepth::Fixed(0),
            ..FilterConfig::default()
        }
    }

    /// Force the portable SWAR kernel (adaptive plane depth).
    pub fn swar() -> FilterConfig {
        FilterConfig {
            kernel: FilterKernel::Swar,
            ..FilterConfig::default()
        }
    }

    /// Replaces the plane depth policy.
    #[must_use]
    pub fn with_depth(mut self, depth: PlaneDepth) -> FilterConfig {
        self.depth = depth;
        self
    }

    /// Replaces the vector kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: FilterKernel) -> FilterConfig {
        self.kernel = kernel;
        self
    }

    /// Replaces the phase-1/phase-2 super-block size (rows).
    #[must_use]
    pub fn with_block_rows(mut self, block_rows: usize) -> FilterConfig {
        self.block_rows = block_rows;
        self
    }

    /// Replaces the multi-core fan-out policy.
    #[must_use]
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> FilterConfig {
        self.parallel = parallel;
        self
    }

    /// Replaces the plane lane width.
    #[must_use]
    pub fn with_width(mut self, width: PlaneWidth) -> FilterConfig {
        self.width = width;
        self
    }
}

impl Default for FilterConfig {
    fn default() -> FilterConfig {
        FilterConfig {
            depth: PlaneDepth::Adaptive,
            kernel: FilterKernel::Auto,
            block_rows: Self::DEFAULT_BLOCK_ROWS,
            parallel: ParallelConfig::default(),
            width: PlaneWidth::Auto,
        }
    }
}

/// Resolves [`PlaneDepth::Adaptive`] for a ring: the smallest depth
/// whose expected survivor rate clears 1/128, capped at
/// [`FilterConfig::MAX_ADAPTIVE_DIMS`]; `0` when a lane could never
/// reject (`2·t_eff+1 ≥ ka`). Computed by repeated multiplication
/// rather than a log ratio so boundary cases (exact powers of the pass
/// rate) resolve deterministically.
fn adaptive_depth(t: u64, ka: u64) -> usize {
    let t_eff = t.min(ka / 2);
    // Coordinates passing one lane: the 2·t_eff+1 residues within
    // cyclic distance t_eff (no overflow: t_eff ≤ ka/2).
    adaptive_depth_for_rate(2 * t_eff + 1, ka)
}

/// The shared depth model behind [`adaptive_depth`], parameterized by
/// the per-lane acceptance count over an arbitrary ring: the 16-bit
/// plane passes `2·t_eff+1` of `ka` residues, the quantized byte plane
/// passes `2·t_q+1` of `⌈ka/q⌉` buckets.
fn adaptive_depth_for_rate(passing: u64, ring: u64) -> usize {
    if passing >= ring {
        return 0;
    }
    let rate = passing as f64 / ring as f64;
    const TARGET: f64 = 1.0 / 128.0;
    let mut depth = 1usize;
    let mut survivors = rate;
    while survivors > TARGET && depth < FilterConfig::MAX_ADAPTIVE_DIMS {
        survivors *= rate;
        depth += 1;
    }
    depth
}

/// The byte plane's quantization for a ring with `ka < 2¹⁵`:
/// `(q, kq, tq)` where `q = ⌈ka/256⌉` is the bucket width (1 when the
/// ring already fits a byte), `kq = ⌈ka/q⌉` the bucket count, and `tq`
/// the conservative bucket-distance threshold. With `t' = min(t, ka/2)`
/// the exact residue test `|a − b|_cyc ≤ t'` implies the bucket test
/// `|a/q − b/q|_cyc ≤ ⌈t'/q⌉ + 1` (bucketing moves each endpoint by
/// < q, and the wrap-around leg over `kq` buckets shrinks by at most
/// one extra bucket when `q ∤ ka`), so `tq = ⌈t'/q⌉ + 1` over-accepts
/// and never over-rejects; `q = 1` needs no slack and keeps `t'`.
fn quantize_ring(t: u64, ka: u64) -> (u16, u16, u16) {
    debug_assert!(ka < 1 << 15);
    let t_eff = t.min(ka / 2) as u16;
    let ka16 = ka as u16;
    let q = ka16.div_ceil(256).max(1);
    let kq = ka16.div_ceil(q);
    let tq = if q == 1 {
        t_eff
    } else {
        (t_eff.div_ceil(q) + 1).min(kq / 2)
    };
    (q, kq, tq)
}

/// Whether the quantized byte plane can reject anything on this ring:
/// a bucket lane passes `2·t_q+1` of `kq` buckets, so once that count
/// reaches `kq` the plane is pure overhead and [`PlaneWidth::Auto`] /
/// [`PlaneWidth::U8`] fall back to the exact 16-bit plane. Wider rings
/// (`ka ≥ 2¹⁵`) never build any plane, so they are never eligible.
fn byte_plane_eligible(t: u64, ka: u64) -> bool {
    if ka >= 1 << 15 {
        return false;
    }
    let (_, kq, tq) = quantize_ring(t, ka);
    2 * u64::from(tq) + 1 < u64::from(kq)
}

/// `0x0001` in every 16-bit lane: broadcasts a lane value by
/// multiplication.
const LANES: u64 = 0x0001_0001_0001_0001;
/// The spare most-significant bit of every 16-bit lane. Plane values
/// are residues in `[0, ka)` with `ka < 2¹⁵`, so this bit is always
/// free to carry per-lane comparison results without cross-lane
/// borrows.
const MSBS: u64 = 0x8000_8000_8000_8000;

/// Largest phase-1/phase-2 super-block, in 64-row liveness words
/// (= [`FilterConfig::block_rows`] 256 — the mask buffer lives on the
/// stack).
const MAX_BLOCK_WORDS: usize = 4;

/// The vector kernel actually chosen for a scan, after runtime feature
/// detection resolved [`FilterKernel::Auto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActiveKernel {
    Swar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "aarch64")]
    Neon,
}

/// One probe's prefilter state, borrowed from the scan scratch: the
/// biased residues of its leading plane coordinates, and the same
/// values broadcast across SWAR lanes.
#[derive(Clone, Copy)]
struct ProbeFilter<'a> {
    biased: &'a [u16],
    bcast: &'a [u64],
}

/// A caller-supplied row subset for masked sweeps, stored exactly like
/// the arena's liveness bitmap (one bit per row, 64 rows per word) so
/// the scan kernels can AND it into the liveness word for free.
///
/// Used by [`SketchArena::find_at_most_masked`] and the index-level
/// subset lookups: compile an id set once, then every sweep touches
/// only the masked rows — wholly-unmasked 64-row blocks are skipped
/// with a single word load, before any phase-1 work.
///
/// ```rust
/// use fe_core::index::store::RowMask;
///
/// let mask = RowMask::from_rows([3usize, 64, 200]);
/// assert!(mask.contains(64));
/// assert!(!mask.contains(4));
/// assert_eq!(mask.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowMask {
    words: Vec<u64>,
}

impl RowMask {
    /// An empty mask (no rows selected).
    pub fn new() -> RowMask {
        RowMask::default()
    }

    /// Builds a mask from an iterator of row ids.
    pub fn from_rows(rows: impl IntoIterator<Item = usize>) -> RowMask {
        let mut mask = RowMask::new();
        for row in rows {
            mask.insert(row);
        }
        mask
    }

    /// Builds a mask directly from packed bitmap words (liveness-word
    /// layout: bit `r % 64` of word `r / 64` selects row `r`). The
    /// epoch segment scan compiles its tombstone complement this way.
    pub(crate) fn from_words(words: Vec<u64>) -> RowMask {
        RowMask { words }
    }

    /// Selects a row (idempotent).
    pub fn insert(&mut self, row: usize) {
        let word = row / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (row % 64);
    }

    /// Is the row selected?
    pub fn contains(&self, row: usize) -> bool {
        self.words
            .get(row / 64)
            .is_some_and(|w| w & (1 << (row % 64)) != 0)
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The packed bitmap words (liveness-word layout).
    fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Bounds and control for one sweep over a row range: which liveness
/// words to walk, the first eligible row, the phase-1/phase-2
/// super-block size, and (on parallel sweeps) the shared
/// lowest-match-so-far row for early cancellation.
#[derive(Clone)]
struct SweepCtl<'a> {
    /// Liveness-word range `[start, end)` to sweep.
    words: std::ops::Range<usize>,
    /// Rows below this never match (the `find_from` resume point).
    from_row: usize,
    /// Super-block size in 64-row liveness words (1, 2 or 4).
    block_words: usize,
    /// Lowest matching row found by *any* chunk of a parallel sweep:
    /// a block whose rows all sit at or above it can be skipped
    /// without changing the lowest-id result.
    cancel: Option<&'a AtomicUsize>,
    /// Caller-supplied row subset, one bit per row like the liveness
    /// bitmap: rows whose bit is clear are never visited (the phase-1
    /// kernels AND it into the liveness word, so masked-out rows cost
    /// nothing). Words past the mask's end are wholly masked out.
    mask: Option<&'a [u64]>,
}

impl SweepCtl<'_> {
    /// The sweepable bits of liveness word `word_idx`: the stored word
    /// ANDed with the caller's row mask, when one is set.
    #[inline]
    fn masked_word(&self, word_idx: usize, live: u64) -> u64 {
        match self.mask {
            Some(mask) => live & mask.get(word_idx).copied().unwrap_or(0),
            None => live,
        }
    }
}

impl<'a> SweepCtl<'a> {
    /// `true` when every row from `start_row` on is already beaten by
    /// the shared best match. Relaxed load: the value is a monotonic
    /// row id used only to skip work, and the final result is read
    /// after the pool latch synchronizes.
    #[inline]
    fn cancelled(&self, start_row: usize) -> bool {
        self.cancel
            .is_some_and(|best| best.load(Ordering::Relaxed) <= start_row)
    }
}

/// The AVX2 prefilter kernel, one of the crate's three isolated
/// `unsafe` ISA modules (see also [`avx512`] and [`neon`]): the
/// intrinsic body itself is safe inside the `#[target_feature]`
/// function (no pointer dereferences — loads go through
/// `_mm256_set_epi64x` on bounds-checked slice reads), and the one
/// `unsafe` call site is guarded by an `is_x86_feature_detected!`
/// assertion, so the target-feature contract can never be violated.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_cmpeq_epi16, _mm256_cmpeq_epi8, _mm256_min_epu16,
        _mm256_min_epu8, _mm256_movemask_epi8, _mm256_or_si256, _mm256_set1_epi16,
        _mm256_set1_epi8, _mm256_set_epi64x, _mm256_setzero_si256, _mm256_sub_epi16,
        _mm256_sub_epi8, _mm256_subs_epu16, _mm256_subs_epu8, _mm256_testz_si256,
    };

    /// Compacts the even bits of a 32-bit mask into 16 bits (AVX2's
    /// byte-granular `movemask` emits two identical bits per 16-bit
    /// lane).
    fn even_bits(m: u32) -> u16 {
        let mut x = u64::from(m) & 0x5555_5555;
        x = (x | (x >> 1)) & 0x3333_3333;
        x = (x | (x >> 2)) & 0x0F0F_0F0F;
        x = (x | (x >> 4)) & 0x00FF_00FF;
        x = (x | (x >> 8)) & 0x0000_FFFF;
        x as u16
    }

    /// `true` once per process: does this CPU have AVX2?
    pub fn available() -> bool {
        // `is_x86_feature_detected!` caches in a relaxed atomic, so
        // per-call cost is a load and a branch.
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// Prefilters 16 rows (plane words `wi .. wi+4` of every lane)
    /// against a probe, returning one bit per passing row.
    ///
    /// # Panics
    /// Panics when AVX2 is unavailable — which makes the inner
    /// `unsafe` call sound unconditionally.
    pub fn quad(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u16 {
        assert!(available(), "AVX2 kernel dispatched without AVX2");
        // SAFETY: the avx2 target feature was just verified above.
        unsafe { quad_avx2(lanes, biased, t, ka, wi) }
    }

    #[target_feature(enable = "avx2")]
    fn quad_avx2(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u16 {
        let zero = _mm256_setzero_si256();
        let tv = _mm256_set1_epi16(t as i16);
        let kav = _mm256_set1_epi16(ka as i16);
        let mut acc = _mm256_set1_epi16(-1);
        for (lane, &pb) in lanes.iter().zip(biased) {
            // 16 rows of this dimension: 4 packed u64 words, lane 0 of
            // word `wi` = row `4·wi`. Little-endian lane order matches
            // `movemask` bit order.
            let v: __m256i = _mm256_set_epi64x(
                lane[wi + 3] as i64,
                lane[wi + 2] as i64,
                lane[wi + 1] as i64,
                lane[wi] as i64,
            );
            let p = _mm256_set1_epi16(pb as i16);
            // |a − b| on unsigned residues: one of the saturating
            // differences is zero, the other the distance.
            let diff = _mm256_or_si256(_mm256_subs_epu16(v, p), _mm256_subs_epu16(p, v));
            // Cyclic distance min(d, ka − d); ka − d ∈ [1, ka] fits.
            let cyc = _mm256_min_epu16(diff, _mm256_sub_epi16(kav, diff));
            // cyc ≤ t ⟺ saturating cyc − t == 0.
            let pass = _mm256_cmpeq_epi16(_mm256_subs_epu16(cyc, tv), zero);
            acc = _mm256_and_si256(acc, pass);
            if _mm256_testz_si256(acc, acc) == 1 {
                return 0;
            }
        }
        even_bits(_mm256_movemask_epi8(acc) as u32)
    }

    /// Prefilters 32 rows of a quantized byte plane (plane words
    /// `wi .. wi+4` of every lane) against a probe's bucket values,
    /// returning one bit per passing row — twice [`quad`]'s rows per
    /// step, and the byte-granular `movemask` is the row mask directly
    /// (no even-bit compaction).
    ///
    /// # Panics
    /// Panics when AVX2 is unavailable — which makes the inner
    /// `unsafe` call sound unconditionally.
    pub fn quad8(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u32 {
        assert!(available(), "AVX2 kernel dispatched without AVX2");
        // SAFETY: the avx2 target feature was just verified above.
        unsafe { quad8_avx2(lanes, biased, t, ka, wi) }
    }

    #[target_feature(enable = "avx2")]
    fn quad8_avx2(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u32 {
        let zero = _mm256_setzero_si256();
        let tv = _mm256_set1_epi8(t as i8);
        // `ka` is the bucket count ≤ 256; 256 wraps to 0, which is
        // still correct below: only d = 0 reaches the wrapped lane
        // (buckets are < ka, so d ≤ ka − 1), and d = 0 always passes.
        let kav = _mm256_set1_epi8(ka as u8 as i8);
        let mut acc = _mm256_set1_epi8(-1);
        for (lane, &pb) in lanes.iter().zip(biased) {
            // 32 rows of this dimension: 4 packed u64 words, 8 bucket
            // bytes each. Little-endian byte order matches `movemask`
            // bit order.
            let v: __m256i = _mm256_set_epi64x(
                lane[wi + 3] as i64,
                lane[wi + 2] as i64,
                lane[wi + 1] as i64,
                lane[wi] as i64,
            );
            let p = _mm256_set1_epi8(pb as u8 as i8);
            // Same shape as the u16 kernel, one byte per row: |a − b|,
            // cyclic min(d, ka − d), then d ≤ t via saturating − t.
            let diff = _mm256_or_si256(_mm256_subs_epu8(v, p), _mm256_subs_epu8(p, v));
            let cyc = _mm256_min_epu8(diff, _mm256_sub_epi8(kav, diff));
            let pass = _mm256_cmpeq_epi8(_mm256_subs_epu8(cyc, tv), zero);
            acc = _mm256_and_si256(acc, pass);
            if _mm256_testz_si256(acc, acc) == 1 {
                return 0;
            }
        }
        _mm256_movemask_epi8(acc) as u32
    }
}

/// The AVX-512 prefilter kernel: 32 rows per iteration (8 contiguous
/// packed `u64` lane words per 512-bit load), with native `__mmask32`
/// comparison results instead of AVX2's movemask-and-compact dance.
/// Uses only `avx512f` + `avx512bw` — no VBMI — so it runs on every
/// AVX-512 server core back to Skylake-SP. Isolated `unsafe`, same
/// soundness argument as [`avx2`]: the dispatch is gated on runtime
/// detection, and the one raw load is bounds-checked by a slice first.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx512 {
    use std::arch::x86_64::{
        _mm512_loadu_si512, _mm512_min_epu16, _mm512_min_epu8, _mm512_or_si512, _mm512_set1_epi16,
        _mm512_set1_epi8, _mm512_sub_epi16, _mm512_sub_epi8, _mm512_subs_epu16, _mm512_subs_epu8,
    };

    /// `true` once per process: does this CPU have the foundation +
    /// byte/word AVX-512 subsets the kernel needs?
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
    }

    /// Prefilters 32 rows (plane words `wi .. wi+8` of every lane)
    /// against a probe, returning one bit per passing row.
    ///
    /// # Panics
    /// Panics when AVX-512 is unavailable — which makes the inner
    /// `unsafe` call sound unconditionally.
    pub fn octo(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u32 {
        assert!(available(), "AVX-512 kernel dispatched without AVX-512");
        // SAFETY: the avx512f/avx512bw target features were just
        // verified above.
        unsafe { octo_avx512(lanes, biased, t, ka, wi) }
    }

    #[target_feature(enable = "avx512f,avx512bw")]
    fn octo_avx512(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u32 {
        let tv = _mm512_set1_epi16(t as i16);
        let kav = _mm512_set1_epi16(ka as i16);
        let mut acc: u32 = !0;
        for (lane, &pb) in lanes.iter().zip(biased) {
            // 32 rows of this dimension: 8 packed u64 words, contiguous
            // in the lane, so one unaligned 512-bit load covers them.
            // Little-endian element order matches the mask bit order.
            let words = &lane[wi..wi + 8];
            // SAFETY: the bounds-checked slice above spans exactly the
            // 64 bytes the unaligned load reads.
            let v = unsafe { _mm512_loadu_si512(words.as_ptr().cast()) };
            let p = _mm512_set1_epi16(pb as i16);
            // Same lane algebra as the AVX2 kernel, with native mask
            // registers for the ≤ comparison.
            let diff = _mm512_or_si512(_mm512_subs_epu16(v, p), _mm512_subs_epu16(p, v));
            let cyc = _mm512_min_epu16(diff, _mm512_sub_epi16(kav, diff));
            acc &= std::arch::x86_64::_mm512_cmple_epu16_mask(cyc, tv);
            if acc == 0 {
                return 0;
            }
        }
        acc
    }

    /// Prefilters 64 rows of a quantized byte plane (plane words
    /// `wi .. wi+8` of every lane) against a probe's bucket values,
    /// returning one bit per passing row: a whole 64-row liveness
    /// block's candidate mask from one `cmple_epu8` per dimension —
    /// twice [`octo`]'s rows per step.
    ///
    /// # Panics
    /// Panics when AVX-512 is unavailable — which makes the inner
    /// `unsafe` call sound unconditionally.
    pub fn octo8(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u64 {
        assert!(available(), "AVX-512 kernel dispatched without AVX-512");
        // SAFETY: the avx512f/avx512bw target features were just
        // verified above.
        unsafe { octo8_avx512(lanes, biased, t, ka, wi) }
    }

    #[target_feature(enable = "avx512f,avx512bw")]
    fn octo8_avx512(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u64 {
        let tv = _mm512_set1_epi8(t as i8);
        // Bucket count ≤ 256; 256 wraps to 0, reached only by d = 0,
        // which passes regardless (see the AVX2 byte kernel).
        let kav = _mm512_set1_epi8(ka as u8 as i8);
        let mut acc: u64 = !0;
        for (lane, &pb) in lanes.iter().zip(biased) {
            // 64 rows of this dimension: 8 packed u64 words, 8 bucket
            // bytes each, contiguous in the lane — one unaligned
            // 512-bit load covers a full liveness block.
            let words = &lane[wi..wi + 8];
            // SAFETY: the bounds-checked slice above spans exactly the
            // 64 bytes the unaligned load reads.
            let v = unsafe { _mm512_loadu_si512(words.as_ptr().cast()) };
            let p = _mm512_set1_epi8(pb as u8 as i8);
            let diff = _mm512_or_si512(_mm512_subs_epu8(v, p), _mm512_subs_epu8(p, v));
            let cyc = _mm512_min_epu8(diff, _mm512_sub_epi8(kav, diff));
            acc &= std::arch::x86_64::_mm512_cmple_epu8_mask(cyc, tv);
            if acc == 0 {
                return 0;
            }
        }
        acc
    }
}

/// The NEON prefilter kernel: 8 rows per iteration (2 packed `u64`
/// lane words per 128-bit vector).
///
/// The intrinsics go through the `intr` façade: real
/// `core::arch::aarch64` wrappers on aarch64, and a bit-exact portable
/// emulation elsewhere under `cfg(test)` — so the kernel *logic* is
/// compiled and property-tested on every host, and the x86 CI runner
/// can catch rot without cross-compiling (the aarch64 `cargo check` in
/// CI covers the wrapper layer itself).
#[cfg(any(target_arch = "aarch64", test))]
#[allow(unsafe_code)]
mod neon {
    use super::intr;

    /// Prefilters 8 rows (plane words `wi`, `wi+1` of every lane)
    /// against a probe, returning one bit per passing row.
    pub fn eight(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u8 {
        let tv = intr::dup(t);
        let kav = intr::dup(ka);
        let mut acc = intr::dup(u16::MAX);
        for (lane, &pb) in lanes.iter().zip(biased) {
            // 8 rows of this dimension: 2 packed u64 words, loaded as
            // 8 little-endian u16 lanes.
            let v = intr::load_pair(lane[wi], lane[wi + 1]);
            let p = intr::dup(pb);
            // |a − b| directly (vabd), then cyclic min(d, ka − d).
            let d = intr::abd(v, p);
            let cyc = intr::min(d, intr::sub(kav, d));
            acc = intr::and(acc, intr::cle(cyc, tv));
            if intr::maxv(acc) == 0 {
                return 0;
            }
        }
        intr::lane_bits(acc)
    }

    /// Prefilters 16 rows of a quantized byte plane (plane words `wi`,
    /// `wi+1` of every lane) against a probe's bucket values, returning
    /// one bit per passing row — twice [`eight`]'s rows per step.
    pub fn sixteen(lanes: &[Vec<u64>], biased: &[u16], t: u16, ka: u16, wi: usize) -> u16 {
        let tv = intr::dup8(t as u8);
        // Bucket count ≤ 256; 256 wraps to 0, reached only by d = 0,
        // which passes regardless (buckets are < ka, so d ≤ ka − 1 and
        // the wrapped subtraction is exact for every d ≥ 1).
        let kav = intr::dup8(ka as u8);
        let mut acc = intr::dup8(u8::MAX);
        for (lane, &pb) in lanes.iter().zip(biased) {
            // 16 rows of this dimension: 2 packed u64 words, loaded as
            // 16 little-endian u8 lanes.
            let v = intr::load_pair8(lane[wi], lane[wi + 1]);
            let p = intr::dup8(pb as u8);
            let d = intr::abd8(v, p);
            let cyc = intr::min8(d, intr::sub8(kav, d));
            acc = intr::and8(acc, intr::cle8(cyc, tv));
            if intr::maxv8(acc) == 0 {
                return 0;
            }
        }
        intr::lane_bits16(acc)
    }
}

/// The NEON intrinsics façade for [`neon`]: thin real wrappers on
/// aarch64, a portable `[u16; 8]` emulation elsewhere (test builds
/// only). Both sides implement the identical lane semantics, so the
/// kernel body above means the same thing wherever it compiles.
#[cfg(any(target_arch = "aarch64", test))]
#[allow(unsafe_code)]
mod intr {
    /// Per-lane bit weights for [`lane_bits`]: anding with a lane mask
    /// and summing across lanes yields one bit per all-ones lane.
    const BIT_WEIGHTS: [u16; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

    /// Per-lane bit weights for [`lane_bits16`], one byte lane each;
    /// the two 8-lane halves are summed separately (16 weighted bytes
    /// would overflow a u8 accumulator) and recombined as low/high
    /// mask bytes.
    const BIT_WEIGHTS8: [u8; 16] = [1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128];

    #[cfg(target_arch = "aarch64")]
    mod imp {
        use core::arch::aarch64 as a;

        pub type V = a::uint16x8_t;

        #[inline]
        pub fn dup(x: u16) -> V {
            // SAFETY: NEON is mandatory on aarch64 (baseline feature).
            unsafe { a::vdupq_n_u16(x) }
        }

        #[inline]
        pub fn load_pair(w0: u64, w1: u64) -> V {
            let words = [w0, w1];
            // SAFETY: `words` spans the 16 bytes read; aarch64 is
            // little-endian, so u64 packing order equals lane order.
            unsafe { a::vld1q_u16(words.as_ptr().cast()) }
        }

        #[inline]
        pub fn abd(x: V, y: V) -> V {
            // SAFETY: baseline NEON.
            unsafe { a::vabdq_u16(x, y) }
        }

        #[inline]
        pub fn min(x: V, y: V) -> V {
            // SAFETY: baseline NEON.
            unsafe { a::vminq_u16(x, y) }
        }

        #[inline]
        pub fn sub(x: V, y: V) -> V {
            // SAFETY: baseline NEON.
            unsafe { a::vsubq_u16(x, y) }
        }

        #[inline]
        pub fn and(x: V, y: V) -> V {
            // SAFETY: baseline NEON.
            unsafe { a::vandq_u16(x, y) }
        }

        #[inline]
        pub fn cle(x: V, y: V) -> V {
            // SAFETY: baseline NEON.
            unsafe { a::vcleq_u16(x, y) }
        }

        #[inline]
        pub fn maxv(x: V) -> u16 {
            // SAFETY: baseline NEON.
            unsafe { a::vmaxvq_u16(x) }
        }

        #[inline]
        pub fn lane_bits(mask: V) -> u8 {
            // SAFETY: `BIT_WEIGHTS` spans the 16 bytes read; the
            // horizontal add is baseline NEON.
            unsafe {
                let weights = a::vld1q_u16(super::BIT_WEIGHTS.as_ptr());
                a::vaddvq_u16(a::vandq_u16(mask, weights)) as u8
            }
        }

        /// Byte-lane twin of [`V`] for the quantized plane kernel.
        pub type W = a::uint8x16_t;

        #[inline]
        pub fn dup8(x: u8) -> W {
            // SAFETY: baseline NEON.
            unsafe { a::vdupq_n_u8(x) }
        }

        #[inline]
        pub fn load_pair8(w0: u64, w1: u64) -> W {
            let words = [w0, w1];
            // SAFETY: `words` spans the 16 bytes read; aarch64 is
            // little-endian, so u64 packing order equals lane order.
            unsafe { a::vld1q_u8(words.as_ptr().cast()) }
        }

        #[inline]
        pub fn abd8(x: W, y: W) -> W {
            // SAFETY: baseline NEON.
            unsafe { a::vabdq_u8(x, y) }
        }

        #[inline]
        pub fn min8(x: W, y: W) -> W {
            // SAFETY: baseline NEON.
            unsafe { a::vminq_u8(x, y) }
        }

        #[inline]
        pub fn sub8(x: W, y: W) -> W {
            // SAFETY: baseline NEON.
            unsafe { a::vsubq_u8(x, y) }
        }

        #[inline]
        pub fn and8(x: W, y: W) -> W {
            // SAFETY: baseline NEON.
            unsafe { a::vandq_u8(x, y) }
        }

        #[inline]
        pub fn cle8(x: W, y: W) -> W {
            // SAFETY: baseline NEON.
            unsafe { a::vcleq_u8(x, y) }
        }

        #[inline]
        pub fn maxv8(x: W) -> u8 {
            // SAFETY: baseline NEON.
            unsafe { a::vmaxvq_u8(x) }
        }

        #[inline]
        pub fn lane_bits16(mask: W) -> u16 {
            // SAFETY: `BIT_WEIGHTS8` spans the 16 bytes read; the
            // per-half horizontal adds are baseline NEON.
            unsafe {
                let weights = a::vld1q_u8(super::BIT_WEIGHTS8.as_ptr());
                let wm = a::vandq_u8(mask, weights);
                let lo = u16::from(a::vaddv_u8(a::vget_low_u8(wm)));
                let hi = u16::from(a::vaddv_u8(a::vget_high_u8(wm)));
                lo | (hi << 8)
            }
        }
    }

    #[cfg(not(target_arch = "aarch64"))]
    mod imp {
        /// Portable stand-in for `uint16x8_t`.
        #[derive(Clone, Copy)]
        pub struct V(pub [u16; 8]);

        fn zip(x: V, y: V, f: impl Fn(u16, u16) -> u16) -> V {
            let mut out = [0u16; 8];
            for (o, (a, b)) in out.iter_mut().zip(x.0.iter().zip(y.0.iter())) {
                *o = f(*a, *b);
            }
            V(out)
        }

        pub fn dup(x: u16) -> V {
            V([x; 8])
        }

        pub fn load_pair(w0: u64, w1: u64) -> V {
            let mut out = [0u16; 8];
            for (i, o) in out.iter_mut().enumerate() {
                let w = if i < 4 { w0 } else { w1 };
                *o = (w >> (16 * (i % 4))) as u16;
            }
            V(out)
        }

        pub fn abd(x: V, y: V) -> V {
            zip(x, y, u16::abs_diff)
        }

        pub fn min(x: V, y: V) -> V {
            zip(x, y, u16::min)
        }

        pub fn sub(x: V, y: V) -> V {
            // vsubq wraps, like the real thing (the kernel never
            // actually wraps: d ≤ ka − 1 keeps ka − d in range).
            zip(x, y, u16::wrapping_sub)
        }

        pub fn and(x: V, y: V) -> V {
            zip(x, y, |a, b| a & b)
        }

        pub fn cle(x: V, y: V) -> V {
            zip(x, y, |a, b| if a <= b { u16::MAX } else { 0 })
        }

        pub fn maxv(x: V) -> u16 {
            x.0.into_iter().max().unwrap_or(0)
        }

        pub fn lane_bits(mask: V) -> u8 {
            mask.0
                .iter()
                .zip(super::BIT_WEIGHTS)
                .map(|(&m, w)| (m & w) as u8)
                .sum()
        }

        /// Portable stand-in for `uint8x16_t`.
        #[derive(Clone, Copy)]
        pub struct W(pub [u8; 16]);

        fn zip8(x: W, y: W, f: impl Fn(u8, u8) -> u8) -> W {
            let mut out = [0u8; 16];
            for (o, (a, b)) in out.iter_mut().zip(x.0.iter().zip(y.0.iter())) {
                *o = f(*a, *b);
            }
            W(out)
        }

        pub fn dup8(x: u8) -> W {
            W([x; 16])
        }

        pub fn load_pair8(w0: u64, w1: u64) -> W {
            let mut out = [0u8; 16];
            for (i, o) in out.iter_mut().enumerate() {
                let w = if i < 8 { w0 } else { w1 };
                *o = (w >> (8 * (i % 8))) as u8;
            }
            W(out)
        }

        pub fn abd8(x: W, y: W) -> W {
            zip8(x, y, u8::abs_diff)
        }

        pub fn min8(x: W, y: W) -> W {
            zip8(x, y, u8::min)
        }

        pub fn sub8(x: W, y: W) -> W {
            // vsubq wraps, like the real thing — and the byte kernel
            // leans on it: a 256-bucket ring's `ka` broadcast wraps to
            // 0, and `0 − d` wraps back to the exact `256 − d`.
            zip8(x, y, u8::wrapping_sub)
        }

        pub fn and8(x: W, y: W) -> W {
            zip8(x, y, |a, b| a & b)
        }

        pub fn cle8(x: W, y: W) -> W {
            zip8(x, y, |a, b| if a <= b { u8::MAX } else { 0 })
        }

        pub fn maxv8(x: W) -> u8 {
            x.0.into_iter().max().unwrap_or(0)
        }

        pub fn lane_bits16(mask: W) -> u16 {
            let lo: u8 = mask.0[..8]
                .iter()
                .zip(&super::BIT_WEIGHTS8[..8])
                .map(|(&m, &w)| m & w)
                .sum();
            let hi: u8 = mask.0[8..]
                .iter()
                .zip(&super::BIT_WEIGHTS8[8..])
                .map(|(&m, &w)| m & w)
                .sum();
            u16::from(lo) | (u16::from(hi) << 8)
        }
    }

    pub use imp::{abd, and, cle, dup, lane_bits, load_pair, maxv, min, sub};
    pub use imp::{abd8, and8, cle8, dup8, lane_bits16, load_pair8, maxv8, min8, sub8};
}

/// Software prefetch for the phase-2 verify pipeline: a best-effort
/// hint (x86-64 `prefetcht0`; a no-op elsewhere — aarch64 cores
/// prefetch the forward-streaming verify pattern well on their own).
/// Isolated `unsafe`: the hinted address is always in-bounds, and
/// prefetch has no architectural effect regardless.
#[allow(unsafe_code)]
mod fetch {
    /// Hints that `data[index..]` is about to be read.
    #[inline]
    pub fn prefetch_read<T>(data: &[T], index: usize) {
        #[cfg(target_arch = "x86_64")]
        if index < data.len() {
            // SAFETY: in-bounds pointer arithmetic; `prefetcht0` reads
            // nothing architecturally and faults on nothing.
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                    data.as_ptr().add(index).cast(),
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (data, index);
        }
    }
}

/// The lane cell representation a [`FilterPlane`] was built with,
/// after [`PlaneWidth`] resolution (`Auto` and ineligible-`U8` rings
/// have already fallen back by the time a plane exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlaneRepr {
    /// Exact biased residues, 4 × 16-bit lanes per word. Phase 1 is
    /// exact on the plane dimensions, so phase 2 verifies only the
    /// remaining `dim − F` coordinates.
    U16,
    /// Quantized buckets (`residue / q`), 8 × 8-bit lanes per word.
    /// Phase 1 over-accepts (see [`PlaneWidth`]), so phase 2 verifies
    /// *all* coordinates — still a net win: byte lanes reject ≈ as
    /// sharply per dimension while the plane moves half the bytes.
    U8 {
        /// Bucket width `⌈ka/256⌉`.
        q: u16,
    },
}

/// The leading dimensions of every row, stored dimension-major for the
/// vector prefilter: lane `d` holds coordinate `d` of rows
/// `0, 1, 2, …` as biased 16-bit residues (`(value mod ka) ∈ [0, ka)`)
/// packed four rows per `u64` word — or, under [`PlaneRepr::U8`], as
/// quantized 8-bit buckets packed eight rows per word.
///
/// Only rows' *positions* live here — liveness stays in the arena's
/// bitmap, which the candidate masks are intersected with, so `remove`
/// never touches the plane and stale tombstone lanes are harmless.
#[derive(Debug, Clone)]
struct FilterPlane {
    /// One packed lane per filter dimension (`min(config.dims, dim)`).
    lanes: Vec<Vec<u64>>,
    /// Lane cell representation (16-bit exact / 8-bit quantized).
    repr: PlaneRepr,
    /// Effective threshold `min(t, ka/2)` — the cyclic distance never
    /// exceeds `ka/2`, so clamping preserves the predicate while
    /// keeping every SWAR constant inside a 15-bit lane. Used by the
    /// exact phase-2 verify.
    t_eff: u16,
    /// The ring circumference (fits: planes only exist for `ka < 2¹⁵`).
    /// Used for probe biasing and the exact phase-2 verify.
    ka16: u16,
    /// Threshold the phase-1 kernels compare against: `t_eff` on a
    /// 16-bit plane, the quantized `t_q` on a byte plane.
    cmp_t: u16,
    /// Ring the phase-1 kernels wrap over: `ka` on a 16-bit plane, the
    /// bucket count `⌈ka/q⌉` (≤ 256) on a byte plane.
    cmp_ka: u16,
    /// `0x8000 + cmp_t` broadcast: SWAR `absd ≤ cmp_t` comparand.
    th: u64,
    /// `cmp_ka − cmp_t` broadcast: SWAR `absd ≥ cmp_ka − cmp_t`
    /// comparand.
    kmt: u64,
}

/// Biases a canonical `i16` ring representative into `[0, ka)`.
#[inline]
fn bias16(c: i16, ka16: u16) -> u16 {
    if c < 0 {
        (i32::from(c) + i32::from(ka16)) as u16
    } else {
        c as u16
    }
}

impl FilterPlane {
    fn new(dims: usize, t: u64, ka: u64, repr: PlaneRepr) -> FilterPlane {
        debug_assert!(dims >= 1 && ka < 1 << 15);
        let ka16 = ka as u16;
        let t_eff = t.min(ka / 2) as u16;
        let (cmp_t, cmp_ka) = match repr {
            PlaneRepr::U16 => (t_eff, ka16),
            PlaneRepr::U8 { q } => {
                let (rq, kq, tq) = quantize_ring(t, ka);
                debug_assert_eq!(rq, q);
                (tq, kq)
            }
        };
        FilterPlane {
            lanes: vec![Vec::new(); dims],
            repr,
            t_eff,
            ka16,
            cmp_t,
            cmp_ka,
            th: (0x8000 + u64::from(cmp_t)) * LANES,
            kmt: (u64::from(cmp_ka) - u64::from(cmp_t)) * LANES,
        }
    }

    fn dims(&self) -> usize {
        self.lanes.len()
    }

    /// Rows packed per `u64` lane word: 4 × u16 or 8 × u8.
    fn rows_per_word(&self) -> usize {
        match self.repr {
            PlaneRepr::U16 => 4,
            PlaneRepr::U8 { .. } => 8,
        }
    }

    /// First coordinate phase 2 must verify: the 16-bit plane tests
    /// its dimensions exactly (verify resumes after them), the byte
    /// plane over-accepts (verify re-checks everything).
    fn verify_start(&self) -> usize {
        match self.repr {
            PlaneRepr::U16 => self.dims(),
            PlaneRepr::U8 { .. } => 0,
        }
    }

    /// Divisor applied to biased probe residues when building
    /// [`ProbeFilter`] state (1 on the exact 16-bit plane).
    fn probe_quant(&self) -> u16 {
        match self.repr {
            PlaneRepr::U16 => 1,
            PlaneRepr::U8 { q } => q,
        }
    }

    fn heap_bytes(&self) -> usize {
        self.lanes.iter().map(|l| l.capacity() * 8).sum()
    }

    fn reserve_rows(&mut self, total_rows: usize) {
        let words = total_rows.div_ceil(self.rows_per_word());
        for lane in &mut self.lanes {
            lane.reserve(words.saturating_sub(lane.len()));
        }
    }

    fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
    }

    /// Appends row `row`'s leading coordinates (canonical `i16`
    /// residues) to every lane. Rows must arrive densely in order.
    fn push_row(&mut self, row: usize, leading: &[i16]) {
        debug_assert_eq!(leading.len(), self.lanes.len());
        let rpw = self.rows_per_word();
        let (word, slot) = (row / rpw, row % rpw);
        let (quant, bits) = match self.repr {
            PlaneRepr::U16 => (1, 16),
            PlaneRepr::U8 { q } => (q, 8),
        };
        for (lane, &c) in self.lanes.iter_mut().zip(leading) {
            let b = u64::from(bias16(c, self.ka16) / quant);
            if slot == 0 {
                debug_assert_eq!(lane.len(), word);
                lane.push(b);
            } else {
                lane[word] |= b << (bits * slot);
            }
        }
    }

    /// Rebuilds every lane from the (compacted) row-major cell buffer.
    fn rebuild(&mut self, cells: &[i16], rows: usize, dim: usize) {
        self.clear();
        let pd = self.dims();
        for row in 0..rows {
            let base = row * dim;
            self.push_row(row, &cells[base..base + pd]);
        }
    }

    /// One dimension's SWAR cyclic test on 4 × 16-bit lane values `a`
    /// against the broadcast probe `pb`, returning the per-lane pass
    /// MSBs. See `DESIGN.md` for the lane algebra; every intermediate
    /// stays within its 16-bit lane because values are 15-bit residues
    /// (buckets ≤ 256 on the byte plane) and `MSBS` supplies the
    /// borrow headroom.
    #[inline]
    fn swar_pass(&self, a: u64, pb: u64) -> u64 {
        // Per lane: a − b + 0x8000 and b − a + 0x8000 (exact; no
        // cross-lane borrow since the `MSBS` addend dominates any
        // 15-bit operand).
        let d1 = (a | MSBS) - pb;
        let d2 = (pb | MSBS) - a;
        // Full-lane mask of a ≥ b from d1's carried MSB.
        let ge = ((d1 >> 15) & LANES) * 0xFFFF;
        // |a − b| per lane, MSB bias stripped.
        let absd = ((d1 & ge) | (d2 & !ge)) & !MSBS;
        // Cyclic pass: absd ≤ cmp_t  OR  absd ≥ cmp_ka − cmp_t.
        ((self.th - absd) | ((absd | MSBS) - self.kmt)) & MSBS
    }

    /// Gathers [`FilterPlane::swar_pass`] survivor MSBs into 4 low
    /// bits.
    #[inline]
    fn swar_gather(acc: u64) -> u64 {
        ((acc >> 15) & 1) | ((acc >> 30) & 2) | ((acc >> 45) & 4) | ((acc >> 60) & 8)
    }

    /// SWAR-prefilters the 4 rows of 16-bit plane word `wi`, returning
    /// one low bit per passing row.
    #[inline]
    fn swar_word(&self, pf: ProbeFilter<'_>, wi: usize) -> u64 {
        let mut acc = MSBS;
        for (lane, &pb) in self.lanes.iter().zip(pf.bcast) {
            acc &= self.swar_pass(lane[wi], pb);
            if acc == 0 {
                return 0;
            }
        }
        Self::swar_gather(acc)
    }

    /// SWAR-prefilters the 8 rows of byte plane word `wi`, returning
    /// one low bit per passing row.
    ///
    /// Bytes have no spare MSB, so the word is split into its even and
    /// odd bytes — each a 4 × 16-bit-lane value whose lanes hold a
    /// bucket ≤ 255, leaving the usual `0x8000` headroom — and both
    /// halves run the existing 16-bit lane algebra (which computes the
    /// exact `cmp_ka − absd`, so even the `kq = 256` ring needs no
    /// wrap-around trick here). The two 4-bit results interleave back
    /// into byte order.
    #[inline]
    fn swar_word_u8(&self, pf: ProbeFilter<'_>, wi: usize) -> u64 {
        const EVENS: u64 = 0x00FF_00FF_00FF_00FF;
        let (mut acc_e, mut acc_o) = (MSBS, MSBS);
        for (lane, &pb) in self.lanes.iter().zip(pf.bcast) {
            let w = lane[wi];
            acc_e &= self.swar_pass(w & EVENS, pb);
            acc_o &= self.swar_pass((w >> 8) & EVENS, pb);
            if acc_e | acc_o == 0 {
                return 0;
            }
        }
        // 16-bit lane i of the even half is byte 2i (row bit 2i); of
        // the odd half, byte 2i+1 — spread each gather bit i to bit 2i
        // and interleave.
        let spread = |x: u64| (x & 1) | ((x & 2) << 1) | ((x & 4) << 2) | ((x & 8) << 3);
        spread(Self::swar_gather(acc_e)) | (spread(Self::swar_gather(acc_o)) << 1)
    }

    /// Candidate mask for one 64-row block: prefilters the block's
    /// plane words (16 on the 16-bit plane, 8 on the byte plane)
    /// against the probe and intersects with the block's liveness word
    /// (which also discards tail lanes past the last real row).
    fn block_candidates(
        &self,
        kernel: ActiveKernel,
        pf: ProbeFilter<'_>,
        w: usize,
        lw: u64,
    ) -> u64 {
        if let PlaneRepr::U8 { .. } = self.repr {
            return self.block_candidates_u8(kernel, pf, w, lw);
        }
        let words = self.lanes[0].len();
        let base = w * 16;
        let mut out = 0u64;
        match kernel {
            #[cfg(target_arch = "x86_64")]
            ActiveKernel::Avx512 => {
                for half in 0..2 {
                    // Wholly-dead 32-row runs need no prefilter at all.
                    if (lw >> (half * 32)) & 0xFFFF_FFFF == 0 {
                        continue;
                    }
                    let wi = base + half * 8;
                    if wi + 8 <= words {
                        let m = avx512::octo(&self.lanes, pf.biased, self.cmp_t, self.cmp_ka, wi);
                        out |= u64::from(m) << (half * 32);
                    } else {
                        // Tail of the buffer: too few words for a full
                        // 32-row vector — finish with SWAR words.
                        for (sub, wi) in (wi..words).enumerate() {
                            out |= self.swar_word(pf, wi) << (half * 32 + sub * 4);
                        }
                    }
                }
            }
            #[cfg(target_arch = "aarch64")]
            ActiveKernel::Neon => {
                for group in 0..8 {
                    // Wholly-dead 8-row runs need no prefilter at all.
                    if (lw >> (group * 8)) & 0xFF == 0 {
                        continue;
                    }
                    let wi = base + group * 2;
                    if wi + 2 <= words {
                        let m = neon::eight(&self.lanes, pf.biased, self.cmp_t, self.cmp_ka, wi);
                        out |= u64::from(m) << (group * 8);
                    } else {
                        for (sub, wi) in (wi..words).enumerate() {
                            out |= self.swar_word(pf, wi) << (group * 8 + sub * 4);
                        }
                    }
                }
            }
            #[cfg(target_arch = "x86_64")]
            ActiveKernel::Avx2 => {
                for chunk in 0..4 {
                    // Wholly-dead 16-row runs need no prefilter at all.
                    if (lw >> (chunk * 16)) & 0xFFFF == 0 {
                        continue;
                    }
                    let wi = base + chunk * 4;
                    if wi + 4 <= words {
                        let m = avx2::quad(&self.lanes, pf.biased, self.cmp_t, self.cmp_ka, wi);
                        out |= u64::from(m) << (chunk * 16);
                    } else {
                        // Tail of the buffer: too few words for a full
                        // 16-row vector — finish with SWAR words.
                        for (sub, wi) in (wi..words).enumerate() {
                            out |= self.swar_word(pf, wi) << (chunk * 16 + sub * 4);
                        }
                    }
                }
            }
            ActiveKernel::Swar => {
                for sub in 0..16 {
                    if (lw >> (sub * 4)) & 0xF == 0 {
                        continue;
                    }
                    let wi = base + sub;
                    if wi >= words {
                        break;
                    }
                    out |= self.swar_word(pf, wi) << (sub * 4);
                }
            }
        }
        out & lw
    }

    /// [`FilterPlane::block_candidates`] for the byte plane: one
    /// 64-row block is 8 plane words, so every backend covers twice
    /// the rows per step — AVX-512 masks the whole block in a single
    /// 512-bit compare.
    fn block_candidates_u8(
        &self,
        kernel: ActiveKernel,
        pf: ProbeFilter<'_>,
        w: usize,
        lw: u64,
    ) -> u64 {
        let words = self.lanes[0].len();
        let base = w * 8;
        let mut out = 0u64;
        match kernel {
            #[cfg(target_arch = "x86_64")]
            ActiveKernel::Avx512 => {
                if base + 8 <= words {
                    out = avx512::octo8(&self.lanes, pf.biased, self.cmp_t, self.cmp_ka, base);
                } else {
                    // Tail of the buffer: too few words for a full
                    // 64-row vector — finish with SWAR words.
                    for (sub, wi) in (base..words).enumerate() {
                        out |= self.swar_word_u8(pf, wi) << (sub * 8);
                    }
                }
            }
            #[cfg(target_arch = "aarch64")]
            ActiveKernel::Neon => {
                for group in 0..4 {
                    // Wholly-dead 16-row runs need no prefilter at all.
                    if (lw >> (group * 16)) & 0xFFFF == 0 {
                        continue;
                    }
                    let wi = base + group * 2;
                    if wi + 2 <= words {
                        let m = neon::sixteen(&self.lanes, pf.biased, self.cmp_t, self.cmp_ka, wi);
                        out |= u64::from(m) << (group * 16);
                    } else {
                        for (sub, wi) in (wi..words).enumerate() {
                            out |= self.swar_word_u8(pf, wi) << (group * 16 + sub * 8);
                        }
                    }
                }
            }
            #[cfg(target_arch = "x86_64")]
            ActiveKernel::Avx2 => {
                for half in 0..2 {
                    // Wholly-dead 32-row runs need no prefilter at all.
                    if (lw >> (half * 32)) & 0xFFFF_FFFF == 0 {
                        continue;
                    }
                    let wi = base + half * 4;
                    if wi + 4 <= words {
                        let m = avx2::quad8(&self.lanes, pf.biased, self.cmp_t, self.cmp_ka, wi);
                        out |= u64::from(m) << (half * 32);
                    } else {
                        // Tail of the buffer: too few words for a full
                        // 32-row vector — finish with SWAR words.
                        for (sub, wi) in (wi..words).enumerate() {
                            out |= self.swar_word_u8(pf, wi) << (half * 32 + sub * 8);
                        }
                    }
                }
            }
            ActiveKernel::Swar => {
                for sub in 0..8 {
                    if (lw >> (sub * 8)) & 0xFF == 0 {
                        continue;
                    }
                    let wi = base + sub;
                    if wi >= words {
                        break;
                    }
                    out |= self.swar_word_u8(pf, wi) << (sub * 8);
                }
            }
        }
        out & lw
    }

    /// Phase 1 + phase 2 for one probe: walks the candidate bitmap one
    /// *super-block* (`ctl.block_words` 64-row blocks) at a time —
    /// phase-1 masks for the whole group are computed first, software-
    /// prefetching each survivor's verify cells as its mask comes out,
    /// then each survivor is exact-verified with the scalar early-abort
    /// kernel from [`FilterPlane::verify_start`] on: the 16-bit plane
    /// already tested its dimensions exactly so verify covers only
    /// `pd..dim`, while the byte plane over-accepts and verify re-runs
    /// the full row. Either way the two phases equal a full-row
    /// `rows_match`; the prefetch distance is what hides phase-2's
    /// scattered loads behind phase-1's compute. Calls `on_match` for
    /// every matching row until it returns `false`.
    fn scan(
        &self,
        col: ColumnView<'_, i16>,
        kernel: ActiveKernel,
        probe: &[i16],
        pf: ProbeFilter<'_>,
        ctl: SweepCtl<'_>,
        on_match: &mut dyn FnMut(RecordId) -> bool,
    ) {
        let vstart = self.verify_start();
        // `min(t, ka/2)` and the real `t` decide conditions (1)–(4)
        // identically (cyclic distance never exceeds ka/2).
        let (t, ka) = (u64::from(self.t_eff), u64::from(self.ka16));
        let suffix = &probe[vstart..];
        let mut masks = [0u64; MAX_BLOCK_WORDS];
        let mut w = ctl.words.start;
        while w < ctl.words.end {
            if ctl.cancelled(w * 64) {
                return;
            }
            let group_end = (w + ctl.block_words).min(ctl.words.end);
            // Phase 1 for the whole super-block, prefetching phase-2
            // cells for the next group of survivors meanwhile.
            for wi in w..group_end {
                let mut lw = ctl.masked_word(wi, col.live[wi]);
                if wi * 64 < ctl.from_row {
                    let below = ctl.from_row - wi * 64;
                    lw = if below >= 64 {
                        0
                    } else {
                        lw & (u64::MAX << below)
                    };
                }
                let cand = if lw == 0 {
                    0
                } else {
                    self.block_candidates(kernel, pf, wi, lw)
                };
                masks[wi - w] = cand;
                let mut pre = cand;
                while pre != 0 {
                    let row = wi * 64 + pre.trailing_zeros() as usize;
                    pre &= pre - 1;
                    fetch::prefetch_read(col.cells, row * col.dim + vstart);
                }
            }
            // Phase 2: exact-verify the super-block's survivors in row
            // order.
            for wi in w..group_end {
                let mut cand = masks[wi - w];
                while cand != 0 {
                    let row = wi * 64 + cand.trailing_zeros() as usize;
                    cand &= cand - 1;
                    let s = &col.cells[row * col.dim + vstart..(row + 1) * col.dim];
                    if rows_match(s, suffix, t, ka) && !on_match(row) {
                        return;
                    }
                }
            }
            w = group_end;
        }
    }

    /// The multi-probe batch kernel on the prefilter plane: one pass
    /// over the plane's `words` range serves every still-unresolved
    /// probe — per block, each active probe gets its own candidate
    /// mask while the block's lanes are hot in cache (survivor cells
    /// prefetched between mask and verify), and a probe retires at its
    /// first verified match. Results equal per-probe
    /// [`FilterPlane::scan`] over the same range (each probe resolves
    /// to its lowest-id live match in the range).
    #[allow(clippy::too_many_arguments)] // one per scan input; bundling would obscure them
    fn scan_multi(
        &self,
        col: ColumnView<'_, i16>,
        kernel: ActiveKernel,
        probes: &[i16],
        pf_all: ProbeFilter<'_>,
        words: std::ops::Range<usize>,
        active: &mut Vec<usize>,
        results: &mut [Option<RecordId>],
    ) {
        let pd = self.dims();
        let vstart = self.verify_start();
        let (t, ka) = (u64::from(self.t_eff), u64::from(self.ka16));
        for w in words {
            let lw = col.live[w];
            if lw == 0 {
                continue;
            }
            let mut i = 0;
            while i < active.len() {
                let p = active[i];
                let pf = ProbeFilter {
                    biased: &pf_all.biased[p * pd..(p + 1) * pd],
                    bcast: &pf_all.bcast[p * pd..(p + 1) * pd],
                };
                let suffix = &probes[p * col.dim + vstart..(p + 1) * col.dim];
                let mut cand = self.block_candidates(kernel, pf, w, lw);
                let mut pre = cand;
                while pre != 0 {
                    let row = w * 64 + pre.trailing_zeros() as usize;
                    pre &= pre - 1;
                    fetch::prefetch_read(col.cells, row * col.dim + vstart);
                }
                let mut resolved = false;
                while cand != 0 {
                    let row = w * 64 + cand.trailing_zeros() as usize;
                    cand &= cand - 1;
                    let s = &col.cells[row * col.dim + vstart..(row + 1) * col.dim];
                    if rows_match(s, suffix, t, ka) {
                        results[p] = Some(row);
                        resolved = true;
                        break;
                    }
                }
                if resolved {
                    active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if active.is_empty() {
                return;
            }
        }
    }
}

/// Per-thread reusable scan state: normalized-probe buffers for every
/// cell width, the prefilter probe state, and the batch active set.
/// Hoisting these off the per-call hot path matters because a sharded
/// lookup re-normalizes the same probes once *per shard* — previously
/// a fresh `Vec` each time.
#[derive(Default)]
struct ScanScratch {
    i16s: Vec<i16>,
    i32s: Vec<i32>,
    i64s: Vec<i64>,
    biased: Vec<u16>,
    bcast: Vec<u64>,
    active: Vec<usize>,
}

/// Builds the prefilter probe state (biased residues + SWAR broadcasts)
/// for every probe in `cells16`: canonical `i16` probe rows laid out
/// `dim` apart, `pd` plane dimensions each, into the scratch's reused
/// `biased`/`bcast` buffers. On a quantized byte plane (`quant > 1`)
/// the stored values are the probe's *bucket* coordinates, so each
/// probe of a micro-batch is quantized exactly once here — never per
/// block inside the sweep. Probes that cannot match (wrong dimension,
/// pre-zeroed rows) keep their slots so indexing stays uniform.
fn build_filter_probes(
    cells16: &[i16],
    dim: usize,
    pd: usize,
    ka16: u16,
    quant: u16,
    biased: &mut Vec<u16>,
    bcast: &mut Vec<u64>,
) {
    let count = cells16.len().checked_div(dim).unwrap_or(0);
    biased.clear();
    bcast.clear();
    biased.reserve(count * pd);
    bcast.reserve(count * pd);
    for p in 0..count {
        for &c in &cells16[p * dim..p * dim + pd] {
            let b = bias16(c, ka16) / quant;
            biased.push(b);
            bcast.push(u64::from(b) * LANES);
        }
    }
}

thread_local! {
    /// The scan scratch is thread-local (lookups are `&self` and run
    /// under shared locks, possibly on rayon workers) and never held
    /// across user code — match callbacks on the scan paths are
    /// internal closures, so the `RefCell` cannot be re-entered.
    static SCRATCH: RefCell<ScanScratch> = RefCell::new(ScanScratch::default());
}

/// A probe sketch pre-normalized into an arena's cell width, so a
/// multi-candidate lookup (the bucket index verifies many rows per
/// probe) converts the probe exactly once.
#[derive(Debug, Clone)]
pub struct NormalizedProbe {
    cells: Cells,
}

/// The canonical ring representative of `v` in `Z_ka`: the minimal
/// signed residue, in `[−(ka−1)/2, ka/2]`. Conditions (1)–(4) are a
/// cyclic distance on `Z_ka`, so they cannot distinguish `v` from
/// `v ± ka` — storing the canonical form loses nothing and is what lets
/// the cell width follow `ka` instead of `i64`.
fn canonical(v: i64, ka: u64) -> i64 {
    // i128: `ka` is a u64, so `v.rem_euclid(ka as i64)` could overflow
    // for ka > i64::MAX; widen once instead of trusting the caller.
    let ka = i128::from(ka);
    let r = i128::from(v).rem_euclid(ka); // r ∈ [0, ka)
    let r = if 2 * r > ka { r - ka } else { r }; // r ∈ [−(ka−1)/2, ka/2]
    r as i64
}

/// The closed interval of already-canonical values for `Z_ka`, clamped
/// to `i64`. Real sketches always land inside it, so the bulk-load hot
/// path reduces canonicalization to two compares per coordinate
/// ([`canonical`]'s `i128` division only runs for out-of-range input).
fn canonical_range(ka: u64) -> (i64, i64) {
    let hi = (ka / 2).min(i64::MAX as u64) as i64;
    let lo = -(((ka - 1) / 2).min(i64::MAX as u64) as i64);
    (lo, hi)
}

/// [`canonical`] with the fast path hoisted out (see
/// [`canonical_range`]).
#[inline]
fn canonical_fast(v: i64, lo: i64, hi: i64, ka: u64) -> i64 {
    if (lo..=hi).contains(&v) {
        v
    } else {
        canonical(v, ka)
    }
}

/// The early-abort slice kernel: does the contiguous row `s` match the
/// normalized probe under conditions (1)–(4)?
///
/// Both sides hold canonical representatives, so `|a − b| ≤ ka − 1` and
/// the cyclic distance is `min(d, ka − d)` with no `%` in the loop —
/// cheaper per coordinate than [`crate::conditions::cyclic_close`] and
/// exactly equivalent to it on canonical values.
#[inline]
fn rows_match<C: Cell>(s: &[C], probe: &[C], t: u64, ka: u64) -> bool {
    s.iter().zip(probe.iter()).all(|(&a, &b)| {
        let d = C::abs_diff_cells(a, b);
        d.min(ka - d) <= t
    })
}

/// A borrowed view of one typed column buffer plus its liveness bitmap:
/// what the blocked scan kernel walks.
#[derive(Clone, Copy)]
struct ColumnView<'a, C> {
    cells: &'a [C],
    live: &'a [u64],
    rows: usize,
    dim: usize,
}

/// Scans the live rows of a column view over `ctl`'s word range,
/// calling `on_match` for every matching row until it returns `false`.
///
/// The scan is *blocked* on the liveness bitmap: rows are visited one
/// 64-row word at a time, wholly-dead blocks are skipped with a single
/// load, and within a block each live row is a contiguous `dim`-cell
/// slice — so the early-abort inner loop streams through the column
/// buffer in order. On parallel sweeps `ctl.cancel` skips blocks that
/// can no longer beat the shared best match.
fn scan_blocks<C: Cell>(
    col: ColumnView<'_, C>,
    probe: &[C],
    t: u64,
    ka: u64,
    ctl: SweepCtl<'_>,
    on_match: &mut dyn FnMut(RecordId) -> bool,
) {
    for word_idx in ctl.words.clone() {
        if ctl
            .cancel
            .is_some_and(|best| best.load(Ordering::Relaxed) <= word_idx * 64)
        {
            return;
        }
        let Some(&live) = col.live.get(word_idx) else {
            return;
        };
        let mut word = ctl.masked_word(word_idx, live);
        if word_idx * 64 < ctl.from_row {
            // Mask off rows below `from_row` (at most the first word).
            let below = ctl.from_row - word_idx * 64;
            word = if below >= 64 {
                0
            } else {
                word & (u64::MAX << below)
            };
        }
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            let row = word_idx * 64 + bit;
            if row >= col.rows {
                return;
            }
            let s = &col.cells[row * col.dim..(row + 1) * col.dim];
            if rows_match(s, probe, t, ka) && !on_match(row) {
                return;
            }
        }
    }
}

/// Scans the live rows of a column view's `words` range **once** on
/// behalf of many probes: every live row is tested against each
/// still-unresolved probe (`active` holds their indices into
/// `results`), and a probe leaves the active set at its first match —
/// so per-probe results equal what a per-probe [`scan_blocks`] over the
/// same range would have returned, while the column buffer is streamed
/// through memory exactly one time instead of once per probe.
///
/// This is the batch kernel behind request scheduling: the scan is
/// memory-bound at scale, so amortizing one pass over N concurrent
/// queries is the whole win. The scan aborts as soon as every probe is
/// resolved.
#[allow(clippy::too_many_arguments)] // one per scan input; bundling would obscure them
fn scan_blocks_multi<C: Cell>(
    col: ColumnView<'_, C>,
    probes: &[C],
    t: u64,
    ka: u64,
    words: std::ops::Range<usize>,
    active: &mut Vec<usize>,
    results: &mut [Option<RecordId>],
) {
    for word_idx in words {
        let Some(&live) = col.live.get(word_idx) else {
            return;
        };
        let mut word = live;
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            let row = word_idx * 64 + bit;
            if row >= col.rows {
                return;
            }
            let s = &col.cells[row * col.dim..(row + 1) * col.dim];
            let mut i = 0;
            while i < active.len() {
                let p = active[i];
                let probe = &probes[p * col.dim..(p + 1) * col.dim];
                if rows_match(s, probe, t, ka) {
                    results[p] = Some(row);
                    active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if active.is_empty() {
                return;
            }
        }
    }
}

/// A probe (or probe batch) normalized into an arena's cell width and
/// bound to its column view: everything a sweep needs, ready to scan
/// any liveness-word range. `Copy` borrows only — the chunks of a
/// parallel sweep share one preparation, built once on the calling
/// thread's scratch.
#[derive(Clone, Copy)]
enum Prepared<'a> {
    /// Two-phase vectorized scan on the prefilter plane (`i16` rings
    /// with an active plane).
    Plane {
        plane: &'a FilterPlane,
        kernel: ActiveKernel,
        col: ColumnView<'a, i16>,
        probes: &'a [i16],
        pf: ProbeFilter<'a>,
    },
    /// Scalar blocked scan, per cell width.
    I16 {
        col: ColumnView<'a, i16>,
        probes: &'a [i16],
        t: u64,
        ka: u64,
    },
    I32 {
        col: ColumnView<'a, i32>,
        probes: &'a [i32],
        t: u64,
        ka: u64,
    },
    I64 {
        col: ColumnView<'a, i64>,
        probes: &'a [i64],
        t: u64,
        ka: u64,
    },
}

impl Prepared<'_> {
    /// Sweeps a single-probe preparation over `ctl`'s word range,
    /// calling `on_match` for every matching row until it returns
    /// `false`.
    fn scan_one(&self, ctl: SweepCtl<'_>, on_match: &mut dyn FnMut(RecordId) -> bool) {
        match *self {
            Prepared::Plane {
                plane,
                kernel,
                col,
                probes,
                pf,
            } => plane.scan(col, kernel, probes, pf, ctl, on_match),
            Prepared::I16 { col, probes, t, ka } => scan_blocks(col, probes, t, ka, ctl, on_match),
            Prepared::I32 { col, probes, t, ka } => scan_blocks(col, probes, t, ka, ctl, on_match),
            Prepared::I64 { col, probes, t, ka } => scan_blocks(col, probes, t, ka, ctl, on_match),
        }
    }

    /// Sweeps a batch preparation's `words` range once for every
    /// still-active probe (see [`scan_blocks_multi`]).
    fn scan_multi(
        &self,
        words: std::ops::Range<usize>,
        active: &mut Vec<usize>,
        results: &mut [Option<RecordId>],
    ) {
        match *self {
            Prepared::Plane {
                plane,
                kernel,
                col,
                probes,
                pf,
            } => plane.scan_multi(col, kernel, probes, pf, words, active, results),
            Prepared::I16 { col, probes, t, ka } => {
                scan_blocks_multi(col, probes, t, ka, words, active, results)
            }
            Prepared::I32 { col, probes, t, ka } => {
                scan_blocks_multi(col, probes, t, ka, words, active, results)
            }
            Prepared::I64 { col, probes, t, ka } => {
                scan_blocks_multi(col, probes, t, ka, words, active, results)
            }
        }
    }
}

/// Contiguous, width-adaptive columnar storage for sketches — the
/// storage engine shared by [`ScanIndex`](super::ScanIndex),
/// [`BucketIndex`](super::BucketIndex) and the shards of a
/// [`ShardedIndex`](super::ShardedIndex).
///
/// Rows are assigned densely in insertion order and never renumbered;
/// [`SketchArena::remove`] flips a liveness bit, and
/// [`SketchArena::compact`] slides live rows down in place, returning
/// the renumbering. The arena's dimension is stamped by the first
/// [`SketchArena::push`]; pushing a different dimension panics, and
/// probes of a different dimension match nothing.
///
/// ```rust
/// use fe_core::index::store::{CellWidth, SketchArena};
///
/// let mut arena = SketchArena::new(100, 400); // t, ka
/// assert_eq!(arena.width(), CellWidth::I16);  // chosen from ka
/// let a = arena.push(&[10, -20, 30]);
/// let b = arena.push(&[180, 180, -180]);
/// assert_eq!(arena.find_first(&[15, -25, 35]), Some(a));
/// assert_eq!(arena.find_first(&[185, 175, -185]), Some(b));
/// assert!(arena.remove(a));
/// assert_eq!(arena.find_first(&[15, -25, 35]), None);
/// assert_eq!(arena.compact(), vec![(b, 0)]);
/// assert_eq!(arena.row(0), Some(vec![180, 180, -180]));
/// ```
#[derive(Debug, Clone)]
pub struct SketchArena {
    t: u64,
    ka: u64,
    width: CellWidth,
    /// Stamped by the first push (`None` while empty-and-unstamped).
    dim: Option<usize>,
    cells: Cells,
    /// Liveness bitmap, one bit per row (1 = live).
    live_bits: Vec<u64>,
    rows: usize,
    live: usize,
    /// The prefilter knob (applied lazily: the plane itself exists only
    /// once the dimension is stamped, and only on `i16` rings).
    filter: FilterConfig,
    /// The dimension-major prefilter plane, when active.
    plane: Option<FilterPlane>,
}

impl SketchArena {
    /// Creates an empty arena for sketches over a ring of circumference
    /// `ka` with threshold `t`, with the default prefilter
    /// configuration (see [`SketchArena::with_filter`]). The cell width
    /// is fixed here, from `ka`.
    pub fn new(t: u64, ka: u64) -> SketchArena {
        SketchArena::with_filter(t, ka, FilterConfig::default())
    }

    /// Creates an empty arena with an explicit prefilter configuration.
    /// The plane only materializes on `i16` rings (`ka < 2¹⁵`); wider
    /// rings ignore `filter` and always scan with the scalar kernel.
    pub fn with_filter(t: u64, ka: u64, filter: FilterConfig) -> SketchArena {
        assert!(ka >= 1, "ring circumference must be at least 1");
        let width = CellWidth::for_ring(ka);
        SketchArena {
            t,
            ka,
            width,
            dim: None,
            cells: Cells::with_capacity(width, 0),
            live_bits: Vec::new(),
            rows: 0,
            live: 0,
            filter,
            plane: None,
        }
    }

    /// An empty arena pre-sized for `rows` sketches of `dim` coordinates
    /// (the bulk-load path: snapshot recovery knows both up front).
    pub fn with_capacity(t: u64, ka: u64, rows: usize, dim: usize) -> SketchArena {
        let mut arena = SketchArena::new(t, ka);
        arena.reserve(rows, dim);
        arena
    }

    /// Pre-sizes for `additional` more rows of `dim` coordinates —
    /// the column buffer, the liveness bitmap, **and** the prefilter
    /// plane lanes, so a pre-sized bulk load reallocates nothing.
    ///
    /// # Panics
    /// Panics if the arena is already stamped with a different
    /// dimension.
    pub fn reserve(&mut self, additional: usize, dim: usize) {
        match self.dim {
            None => {
                self.dim = Some(dim);
                self.stamp_plane();
            }
            Some(stamped) => {
                assert_eq!(dim, stamped, "reserve dimension must match the stamp")
            }
        }
        self.cells.reserve(additional * dim);
        self.live_bits
            .reserve((self.rows + additional).div_ceil(64) - self.live_bits.len());
        if let Some(plane) = &mut self.plane {
            plane.reserve_rows(self.rows + additional);
        }
    }

    /// The plane depth this arena's config resolves to for its ring
    /// (before clamping to the stamped dimension):
    /// [`PlaneDepth::Fixed`] verbatim, [`PlaneDepth::Adaptive`] from
    /// the per-dimension rejection model (see [`PlaneDepth`]) — on a
    /// byte plane, the quantized per-bucket acceptance rate
    /// `(2·t_q+1)/⌈ka/q⌉`, since byte lanes individually accept more
    /// often than exact 16-bit lanes.
    pub fn resolved_depth(&self) -> usize {
        match self.filter.depth {
            PlaneDepth::Fixed(d) => d,
            PlaneDepth::Adaptive => self.adaptive_depth_for(self.resolved_repr()),
        }
    }

    /// [`PlaneDepth::Adaptive`] under a given plane representation.
    fn adaptive_depth_for(&self, repr: PlaneRepr) -> usize {
        match repr {
            PlaneRepr::U16 => adaptive_depth(self.t, self.ka),
            PlaneRepr::U8 { .. } => {
                let (_, kq, tq) = quantize_ring(self.t, self.ka);
                adaptive_depth_for_rate(2 * u64::from(tq) + 1, u64::from(kq))
            }
        }
    }

    /// Resolves [`FilterConfig::width`] for this arena's ring: `U8`
    /// only when the quantized plane can still reject
    /// ([`byte_plane_eligible`]); `Auto` additionally requires the
    /// byte plane's modeled traffic (its depth × 1 byte/row) to not
    /// exceed the 16-bit plane's (its depth × 2 bytes/row). Only
    /// meaningful on `i16` rings — wider rings never build a plane.
    fn resolved_repr(&self) -> PlaneRepr {
        let byte_repr = || {
            let (q, _, _) = quantize_ring(self.t, self.ka);
            PlaneRepr::U8 { q }
        };
        match self.filter.width {
            PlaneWidth::U16 => PlaneRepr::U16,
            PlaneWidth::U8 if byte_plane_eligible(self.t, self.ka) => byte_repr(),
            PlaneWidth::U8 => PlaneRepr::U16,
            PlaneWidth::Auto => {
                if !byte_plane_eligible(self.t, self.ka) {
                    return PlaneRepr::U16;
                }
                let repr = byte_repr();
                let (u8_depth, u16_depth) = match self.filter.depth {
                    // A pinned depth costs the same lanes either way:
                    // the byte plane halves the traffic outright.
                    PlaneDepth::Fixed(d) => (d, d),
                    PlaneDepth::Adaptive => (
                        self.adaptive_depth_for(repr),
                        self.adaptive_depth_for(PlaneRepr::U16),
                    ),
                };
                if u8_depth <= u16_depth * 2 {
                    repr
                } else {
                    PlaneRepr::U16
                }
            }
        }
    }

    /// Builds the plane when the freshly stamped dimension and the ring
    /// width allow one. Called exactly once, at stamp time.
    fn stamp_plane(&mut self) {
        debug_assert!(self.plane.is_none());
        let dim = self.dim.unwrap_or(0);
        let pd = self.resolved_depth().min(dim);
        if self.width == CellWidth::I16 && pd > 0 {
            self.plane = Some(FilterPlane::new(pd, self.t, self.ka, self.resolved_repr()));
        }
    }

    /// The vector kernel a scan would use right now: `"scalar"` (no
    /// plane — wide ring, disabled filter, or nothing stamped),
    /// `"swar"`, `"avx2"`, `"avx512"`, or `"neon"`. Benches use this to
    /// label ablations.
    pub fn filter_kernel(&self) -> &'static str {
        match self.active_kernel() {
            None => "scalar",
            Some(ActiveKernel::Swar) => "swar",
            #[cfg(target_arch = "x86_64")]
            Some(ActiveKernel::Avx2) => "avx2",
            #[cfg(target_arch = "x86_64")]
            Some(ActiveKernel::Avx512) => "avx512",
            #[cfg(target_arch = "aarch64")]
            Some(ActiveKernel::Neon) => "neon",
        }
    }

    /// The number of dimensions the prefilter plane holds (0 when
    /// inactive).
    pub fn plane_dims(&self) -> usize {
        self.plane.as_ref().map_or(0, FilterPlane::dims)
    }

    /// The lane width the live plane was built with — `"u8"`, `"u16"`,
    /// or `"none"` when no plane exists. Benches use this to label
    /// ablations, like [`SketchArena::filter_kernel`].
    pub fn plane_width(&self) -> &'static str {
        match self.plane.as_ref().map(|p| p.repr) {
            None => "none",
            Some(PlaneRepr::U16) => "u16",
            Some(PlaneRepr::U8 { .. }) => "u8",
        }
    }

    /// The configured prefilter knob (which the ring width may have
    /// overridden — see [`SketchArena::plane_dims`] for what is live).
    pub fn filter_config(&self) -> FilterConfig {
        self.filter
    }

    /// The plane plus its resolved kernel when the prefilter is live —
    /// the single dispatch condition shared by the single-probe and
    /// batch scan entry points.
    fn active_plane(&self) -> Option<(&FilterPlane, ActiveKernel)> {
        Some((self.plane.as_ref()?, self.active_kernel()?))
    }

    fn active_kernel(&self) -> Option<ActiveKernel> {
        self.plane.as_ref()?;
        Some(match self.filter.kernel {
            FilterKernel::Swar => ActiveKernel::Swar,
            FilterKernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    if avx2::available() {
                        ActiveKernel::Avx2
                    } else {
                        ActiveKernel::Swar
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    ActiveKernel::Swar
                }
            }
            FilterKernel::Auto => {
                #[cfg(target_arch = "x86_64")]
                {
                    if avx512::available() {
                        ActiveKernel::Avx512
                    } else if avx2::available() {
                        ActiveKernel::Avx2
                    } else {
                        ActiveKernel::Swar
                    }
                }
                #[cfg(target_arch = "aarch64")]
                {
                    // NEON is baseline on aarch64: no runtime check.
                    ActiveKernel::Neon
                }
                #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
                {
                    ActiveKernel::Swar
                }
            }
        })
    }

    /// The match threshold `t`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The ring circumference `ka`.
    pub fn ka(&self) -> u64 {
        self.ka
    }

    /// The cell width chosen from `ka`.
    pub fn width(&self) -> CellWidth {
        self.width
    }

    /// The stamped sketch dimension (`None` until the first push).
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total rows, live and tombstoned.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Heap bytes held by the arena: the column buffer, the liveness
    /// bitmap, and the prefilter plane lanes (capacities, not lengths —
    /// this is what the allocator has actually handed out).
    pub fn heap_bytes(&self) -> usize {
        self.cells.capacity_bytes()
            + self.live_bits.capacity() * 8
            + self.plane.as_ref().map_or(0, FilterPlane::heap_bytes)
    }

    /// Appends a sketch, returning its row id (dense, insertion order).
    ///
    /// Coordinates are stored as canonical ring representatives —
    /// indistinguishable from the originals under conditions (1)–(4).
    ///
    /// # Panics
    /// Panics if `sketch`'s dimension differs from the stamped one.
    pub fn push(&mut self, sketch: &[i64]) -> RecordId {
        let dim = match self.dim {
            Some(dim) => dim,
            None => {
                self.dim = Some(sketch.len());
                self.stamp_plane();
                sketch.len()
            }
        };
        assert_eq!(
            sketch.len(),
            dim,
            "sketch dimension {} does not match the arena's stamped dimension {dim}",
            sketch.len()
        );
        let ka = self.ka;
        let (lo, hi) = canonical_range(ka);
        match &mut self.cells {
            Cells::I16(v) => v.extend(
                sketch
                    .iter()
                    .map(|&c| i16::narrow(canonical_fast(c, lo, hi, ka))),
            ),
            Cells::I32(v) => v.extend(
                sketch
                    .iter()
                    .map(|&c| i32::narrow(canonical_fast(c, lo, hi, ka))),
            ),
            Cells::I64(v) => v.extend(sketch.iter().map(|&c| canonical_fast(c, lo, hi, ka))),
        }
        let row = self.rows;
        // Mirror the row's leading coordinates into the prefilter plane
        // (reading back the just-stored canonical residues).
        if let (Some(plane), Cells::I16(v)) = (&mut self.plane, &self.cells) {
            let pd = plane.dims();
            plane.push_row(row, &v[row * dim..row * dim + pd]);
        }
        if row / 64 == self.live_bits.len() {
            self.live_bits.push(0);
        }
        self.live_bits[row / 64] |= 1 << (row % 64);
        self.rows += 1;
        self.live += 1;
        row
    }

    /// Is this row live (assigned and not tombstoned)?
    pub fn is_live(&self, id: RecordId) -> bool {
        id < self.rows && self.live_bits[id / 64] & (1 << (id % 64)) != 0
    }

    /// Tombstones a row. Returns `false` for unknown or already-dead
    /// ids. O(1): one bitmap bit flips; the cells stay until
    /// [`SketchArena::compact`].
    pub fn remove(&mut self, id: RecordId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.live_bits[id / 64] &= !(1 << (id % 64));
        self.live -= 1;
        true
    }

    /// Materializes a live row as an owned `Vec<i64>` (`None` for dead
    /// or unknown ids). Prefer [`SketchArena::copy_row_into`] /
    /// [`SketchArena::for_each_live`] on hot paths.
    pub fn row(&self, id: RecordId) -> Option<Vec<i64>> {
        let mut out = Vec::new();
        self.copy_row_into(id, &mut out).then_some(out)
    }

    /// Copies a live row into `out` (cleared first), widening to `i64`.
    /// Returns `false` — leaving `out` empty — for dead or unknown ids.
    /// This is the allocation-free row access primitive: callers reuse
    /// one scratch buffer across an entire streaming pass.
    pub fn copy_row_into(&self, id: RecordId, out: &mut Vec<i64>) -> bool {
        out.clear();
        if !self.is_live(id) {
            return false;
        }
        let dim = self.dim.expect("live rows imply a stamped dimension");
        let range = id * dim..(id + 1) * dim;
        match &self.cells {
            Cells::I16(v) => out.extend(v[range].iter().map(|&c| c.widen())),
            Cells::I32(v) => out.extend(v[range].iter().map(|&c| c.widen())),
            Cells::I64(v) => out.extend_from_slice(&v[range]),
        }
        true
    }

    /// Streams every live row in ascending id order through one reused
    /// scratch buffer — the zero-clone alternative to materializing
    /// `Vec<(RecordId, Vec<i64>)>` for snapshot and compaction passes.
    pub fn for_each_live(&self, mut f: impl FnMut(RecordId, &[i64])) {
        let mut scratch = Vec::new();
        for id in 0..self.rows {
            if self.copy_row_into(id, &mut scratch) {
                f(id, &scratch);
            }
        }
    }

    /// The column buffer as little-endian bytes in storage order plus
    /// the liveness words — the payload of a sealed-segment frame
    /// (round-tripped by [`SketchArena::from_parts`]).
    pub(crate) fn export_parts(&self) -> (Vec<u8>, &[u64]) {
        (self.cells.to_le_bytes(), &self.live_bits)
    }

    /// Rebuilds an arena from a sealed-segment frame: `rows` rows of
    /// `dim` little-endian cells plus the liveness words. Returns
    /// `None` on any size mismatch (a corrupt or truncated frame —
    /// callers fall back to replaying the journal). The prefilter
    /// plane is rebuilt from the imported cells; cell values are
    /// trusted to be canonical ring representatives, which the
    /// exporting arena guarantees and the enclosing frame's checksum
    /// protects.
    pub(crate) fn from_parts(
        t: u64,
        ka: u64,
        filter: FilterConfig,
        dim: usize,
        rows: usize,
        cell_bytes: &[u8],
        mut live_words: Vec<u64>,
    ) -> Option<SketchArena> {
        let width = CellWidth::for_ring(ka);
        if cell_bytes.len() != rows * dim * width.cell_bytes()
            || live_words.len() != rows.div_ceil(64)
        {
            return None;
        }
        let cells = Cells::from_le_bytes(width, cell_bytes)?;
        debug_assert_eq!(cells.len_cells(), rows * dim);
        // Mask bits past the last row defensively: `live` is counted
        // from these words, and stray tail bits would corrupt it.
        if let (Some(last), tail @ 1..) = (live_words.last_mut(), rows % 64) {
            *last &= (1u64 << tail) - 1;
        }
        let live = live_words.iter().map(|w| w.count_ones() as usize).sum();
        let mut arena = SketchArena::with_filter(t, ka, filter);
        arena.cells = cells;
        arena.live_bits = live_words;
        arena.rows = rows;
        arena.live = live;
        arena.dim = Some(dim);
        arena.stamp_plane();
        if let (Some(plane), Cells::I16(v)) = (&mut arena.plane, &arena.cells) {
            let pd = plane.dims();
            plane.reserve_rows(rows);
            for row in 0..rows {
                plane.push_row(row, &v[row * dim..row * dim + pd]);
            }
        }
        Some(arena)
    }

    /// Normalizes a probe into this arena's cell width, or `None` when
    /// its dimension cannot match any stored row (the trait-level
    /// "mismatched probes match nothing" contract).
    pub fn normalize_probe(&self, probe: &[i64]) -> Option<NormalizedProbe> {
        if self.dim != Some(probe.len()) {
            return None;
        }
        let ka = self.ka;
        let (lo, hi) = canonical_range(ka);
        let cells = match self.width {
            CellWidth::I16 => Cells::I16(
                probe
                    .iter()
                    .map(|&c| i16::narrow(canonical_fast(c, lo, hi, ka)))
                    .collect(),
            ),
            CellWidth::I32 => Cells::I32(
                probe
                    .iter()
                    .map(|&c| i32::narrow(canonical_fast(c, lo, hi, ka)))
                    .collect(),
            ),
            CellWidth::I64 => Cells::I64(
                probe
                    .iter()
                    .map(|&c| canonical_fast(c, lo, hi, ka))
                    .collect(),
            ),
        };
        Some(NormalizedProbe { cells })
    }

    /// Does the (live) row match the pre-normalized probe under
    /// conditions (1)–(4)? Dead and unknown rows never match.
    pub fn row_matches(&self, id: RecordId, probe: &NormalizedProbe) -> bool {
        if !self.is_live(id) {
            return false;
        }
        let dim = self.dim.expect("live rows imply a stamped dimension");
        let range = id * dim..(id + 1) * dim;
        match (&self.cells, &probe.cells) {
            (Cells::I16(v), Cells::I16(p)) => rows_match(&v[range], p, self.t, self.ka),
            (Cells::I32(v), Cells::I32(p)) => rows_match(&v[range], p, self.t, self.ka),
            (Cells::I64(v), Cells::I64(p)) => rows_match(&v[range], p, self.t, self.ka),
            _ => unreachable!("probe was normalized for this arena's width"),
        }
    }

    /// First live row matching the probe (lowest id), scanning with the
    /// blocked early-abort kernel. `None` for no match or a
    /// dimension-mismatched probe.
    pub fn find_first(&self, probe: &[i64]) -> Option<RecordId> {
        self.find_from(probe, 0)
    }

    /// Like [`SketchArena::find_first`], but starts the scan at row
    /// `from` (resumable scans for candidate pruning).
    pub fn find_from(&self, probe: &[i64], from: RecordId) -> Option<RecordId> {
        if let Some(chunks) = self.parallel_chunks(from) {
            return self.par_find_from(probe, from, &chunks);
        }
        let mut found = None;
        self.scan_probe(probe, from, &mut |row| {
            found = Some(row);
            false
        });
        found
    }

    /// The phase-1/phase-2 super-block size in 64-row liveness words
    /// (see [`FilterConfig::block_rows`]).
    fn block_words(&self) -> usize {
        (self.filter.block_rows / 64).clamp(1, MAX_BLOCK_WORDS)
    }

    /// Splits the liveness words at/after `from_row` into the
    /// contiguous chunks of a parallel sweep, or `None` when the sweep
    /// should stay sequential: fan-out disabled, too few rows to
    /// amortize pool dispatch, already *on* a pool worker (a sharded
    /// index fanned out per shard — nesting would oversubscribe the
    /// same cores), or no second thread to fan out to. Chunks are in
    /// ascending row order and two-per-thread, so early-cancelled
    /// sweeps load-balance.
    fn parallel_chunks(&self, from_row: usize) -> Option<Vec<std::ops::Range<usize>>> {
        let pc = self.filter.parallel;
        if pc.max_threads == 1 || self.rows.saturating_sub(from_row) < pc.min_rows.max(1) {
            return None;
        }
        if rayon::in_pool_worker() {
            return None;
        }
        let mut threads = rayon::current_num_threads();
        if pc.max_threads != 0 {
            threads = threads.min(pc.max_threads);
        }
        let first = from_row / 64;
        let span = self.live_bits.len().saturating_sub(first);
        let chunks = (threads * 2).min(span);
        if threads <= 1 || chunks < 2 {
            return None;
        }
        let (base, extra) = (span / chunks, span % chunks);
        let mut out = Vec::with_capacity(chunks);
        let mut start = first;
        for i in 0..chunks {
            let len = base + usize::from(i < extra);
            out.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, self.live_bits.len());
        Some(out)
    }

    /// [`SketchArena::find_from`] fanned out over `chunks` on the
    /// worker pool. Bit-identical to the sequential sweep: every chunk
    /// reports the lowest matching row of its own range into a shared
    /// `fetch_min` cell, chunks whose entire range sits at/above the
    /// shared best are skipped (they could only report higher rows),
    /// and the final minimum is read after the pool latch — so the
    /// result is the global lowest-id match, exactly as sequential.
    fn par_find_from(
        &self,
        probe: &[i64],
        from: RecordId,
        chunks: &[std::ops::Range<usize>],
    ) -> Option<RecordId> {
        let best = AtomicUsize::new(usize::MAX);
        let block_words = self.block_words();
        self.with_prepared_single(probe, |prep| {
            let Some(prep) = prep else {
                return;
            };
            rayon::scope_for_each(chunks.len(), &|i| {
                let words = chunks[i].clone();
                let ctl = SweepCtl {
                    from_row: from,
                    block_words,
                    cancel: Some(&best),
                    mask: None,
                    words,
                };
                if ctl.cancelled(ctl.words.start * 64) {
                    return;
                }
                let mut local = None;
                prep.scan_one(ctl, &mut |row| {
                    local = Some(row);
                    false
                });
                if let Some(row) = local {
                    best.fetch_min(row, Ordering::Relaxed);
                }
            });
        });
        let b = best.load(Ordering::Relaxed);
        (b != usize::MAX).then_some(b)
    }

    /// [`SketchArena::find_all`] fanned out over `chunks`: each chunk
    /// collects its own ascending matches into a dedicated slot, and
    /// the slots concatenate in chunk order — ranges partition the rows
    /// in ascending order, so the concatenation is the sequential
    /// result.
    fn par_find_all(&self, probe: &[i64], chunks: &[std::ops::Range<usize>]) -> Vec<RecordId> {
        let slots: Vec<Mutex<Vec<RecordId>>> =
            chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
        let block_words = self.block_words();
        self.with_prepared_single(probe, |prep| {
            let Some(prep) = prep else {
                return;
            };
            rayon::scope_for_each(chunks.len(), &|i| {
                let mut local = Vec::new();
                let ctl = SweepCtl {
                    words: chunks[i].clone(),
                    from_row: 0,
                    block_words,
                    cancel: None,
                    mask: None,
                };
                prep.scan_one(ctl, &mut |row| {
                    local.push(row);
                    true
                });
                *slots[i].lock().expect("sweep worker panicked") = local;
            });
        });
        let mut out = Vec::new();
        for slot in slots {
            out.append(&mut slot.into_inner().expect("sweep worker panicked"));
        }
        out
    }

    /// Resolves a whole batch of probes with **one pass** over the
    /// column buffer: every live row is tested against each
    /// still-unresolved probe, so N concurrent queries share a single
    /// memory sweep instead of issuing N sweeps (the scan at scale is
    /// memory-bound, making this the amortization that turns batched
    /// service into a throughput win — see `scheduler_throughput` in
    /// `fe-bench`).
    ///
    /// Results are position-aligned with `probes` and identical to
    /// calling [`SketchArena::find_first`] per probe: each probe
    /// resolves to its lowest-id live match. Probes whose dimension
    /// differs from the stamped one resolve to `None`, as everywhere
    /// else.
    pub fn find_first_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        let mut results = vec![None; probes.len()];
        let Some(dim) = self.dim else {
            return results;
        };
        if self.live == 0 || dim == 0 {
            // `dim == 0` would make every per-row slice empty (matching
            // everything vacuously is what find_first does too, via
            // rows_match on empty slices) — fall back to the per-probe
            // path rather than special-casing zero-width rows here.
            for (slot, probe) in results.iter_mut().zip(probes) {
                *slot = self.find_first(probe);
            }
            return results;
        }
        let ka = self.ka;
        let (lo, hi) = canonical_range(ka);
        let (t, rows, live) = (self.t, self.rows, self.live_bits.as_slice());
        let all_words = 0..live.len();
        let chunks = self.parallel_chunks(0);
        SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            s.active.clear();
            s.active
                .extend((0..probes.len()).filter(|&p| probes[p].len() == dim));
            if s.active.is_empty() {
                return;
            }
            // One flattened, canonicalized probe matrix in the arena's
            // cell width, built in the reusable scratch: wrong-dimension
            // probes (never active) occupy a zeroed row so the `p * dim`
            // indexing stays uniform.
            macro_rules! flatten {
                ($buf:ident, $c:ty) => {{
                    s.$buf.clear();
                    s.$buf.reserve(probes.len() * dim);
                    for probe in probes {
                        if probe.len() == dim {
                            s.$buf.extend(
                                probe
                                    .iter()
                                    .map(|&v| <$c as Cell>::narrow(canonical_fast(v, lo, hi, ka))),
                            );
                        } else {
                            let len = s.$buf.len();
                            s.$buf.resize(len + dim, <$c as Cell>::narrow(0));
                        }
                    }
                }};
            }
            let prep = match &self.cells {
                Cells::I16(v) => {
                    flatten!(i16s, i16);
                    let col = ColumnView {
                        cells: v.as_slice(),
                        live,
                        rows,
                        dim,
                    };
                    if let Some((plane, kernel)) = self.active_plane() {
                        build_filter_probes(
                            &s.i16s,
                            dim,
                            plane.dims(),
                            plane.ka16,
                            plane.probe_quant(),
                            &mut s.biased,
                            &mut s.bcast,
                        );
                        Prepared::Plane {
                            plane,
                            kernel,
                            col,
                            probes: &s.i16s,
                            pf: ProbeFilter {
                                biased: &s.biased,
                                bcast: &s.bcast,
                            },
                        }
                    } else {
                        Prepared::I16 {
                            col,
                            probes: &s.i16s,
                            t,
                            ka,
                        }
                    }
                }
                Cells::I32(v) => {
                    flatten!(i32s, i32);
                    Prepared::I32 {
                        col: ColumnView {
                            cells: v.as_slice(),
                            live,
                            rows,
                            dim,
                        },
                        probes: &s.i32s,
                        t,
                        ka,
                    }
                }
                Cells::I64(v) => {
                    flatten!(i64s, i64);
                    Prepared::I64 {
                        col: ColumnView {
                            cells: v.as_slice(),
                            live,
                            rows,
                            dim,
                        },
                        probes: &s.i64s,
                        t,
                        ka,
                    }
                }
            };
            match &chunks {
                // Parallel batch sweep: each chunk runs the multi-probe
                // kernel over its own word range with a private copy of
                // the active set, then per-probe firsts fold in
                // ascending chunk order — the first chunk to resolve a
                // probe holds its lowest-id match, so the fold equals
                // the sequential result deterministically.
                Some(chunks) => {
                    let base: &Vec<usize> = &s.active;
                    let slots: Vec<Mutex<Vec<Option<RecordId>>>> =
                        chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
                    rayon::scope_for_each(chunks.len(), &|i| {
                        let mut active = base.clone();
                        let mut local = vec![None; probes.len()];
                        prep.scan_multi(chunks[i].clone(), &mut active, &mut local);
                        *slots[i].lock().expect("sweep worker panicked") = local;
                    });
                    for slot in slots {
                        let local = slot.into_inner().expect("sweep worker panicked");
                        for (out, found) in results.iter_mut().zip(local) {
                            if out.is_none() {
                                *out = found;
                            }
                        }
                    }
                }
                None => prep.scan_multi(all_words, &mut s.active, &mut results),
            }
        });
        results
    }

    /// Every live row matching the probe, ascending.
    pub fn find_all(&self, probe: &[i64]) -> Vec<RecordId> {
        if let Some(chunks) = self.parallel_chunks(0) {
            return self.par_find_all(probe, &chunks);
        }
        let mut out = Vec::new();
        self.scan_probe(probe, 0, &mut |row| {
            out.push(row);
            true
        });
        out
    }

    /// The `budget` lowest-id live rows matching the probe, ascending —
    /// the count-bounded kernel behind reset-style decisions (0 /
    /// exactly-1 / ≥2 without scanning past the `budget`-th hit).
    /// `budget = 1` is [`SketchArena::find_first`] as a one-element
    /// vector; a large budget degrades gracefully into
    /// [`SketchArena::find_all`].
    pub fn find_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        self.find_bounded(probe, None, budget, None)
    }

    /// [`SketchArena::find_at_most`] restricted to the rows selected by
    /// `mask`: unselected rows are never visited (the mask is ANDed
    /// into the liveness words ahead of phase 1), which is what makes
    /// local-uniqueness checks over a small id subset cheap even on a
    /// large arena.
    pub fn find_at_most_masked(
        &self,
        probe: &[i64],
        mask: &RowMask,
        budget: usize,
    ) -> Vec<RecordId> {
        self.find_bounded(probe, Some(mask), budget, None)
    }

    /// The one bounded sweep serving [`SketchArena::find_at_most`], the
    /// masked variant, and [`PairedArena`]'s combined scans: collects
    /// the `budget` lowest matching rows, optionally restricted to
    /// `mask`, optionally post-filtered by `extra` (a per-row predicate
    /// that must also hold — the paired max-combine verifies the second
    /// template there). Rows failing `extra` do not consume budget.
    fn find_bounded(
        &self,
        probe: &[i64],
        mask: Option<&RowMask>,
        budget: usize,
        extra: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
    ) -> Vec<RecordId> {
        if budget == 0 || self.live == 0 {
            return Vec::new();
        }
        let mask_words = mask.map(RowMask::words);
        if let Some(chunks) = self.parallel_chunks(0) {
            return self.par_find_bounded(probe, mask_words, budget, extra, &chunks);
        }
        let ctl = SweepCtl {
            words: 0..self.live_bits.len(),
            from_row: 0,
            block_words: self.block_words(),
            cancel: None,
            mask: mask_words,
        };
        let mut out = Vec::new();
        self.with_prepared_single(probe, |prep| {
            if let Some(prep) = prep {
                prep.scan_one(ctl, &mut |row| {
                    if extra.is_none_or(|f| f(row)) {
                        out.push(row);
                    }
                    out.len() < budget
                });
            }
        });
        out
    }

    /// [`SketchArena::find_bounded`] fanned out over `chunks`. The
    /// fetch-min cancellation generalizes from "lowest match so far"
    /// to a bounded hit-list: when a chunk collects its `budget`-th
    /// local match at row `r`, at least `budget` matches exist at rows
    /// `≤ r` globally, so chunks whose whole range sits above `r` can
    /// never contribute to the `budget` lowest and are skipped. Chunks
    /// partition the rows in ascending order, so concatenating the
    /// per-chunk ascending hit-lists in chunk order and truncating to
    /// `budget` reproduces the sequential result exactly.
    fn par_find_bounded(
        &self,
        probe: &[i64],
        mask: Option<&[u64]>,
        budget: usize,
        extra: Option<&(dyn Fn(RecordId) -> bool + Sync)>,
        chunks: &[std::ops::Range<usize>],
    ) -> Vec<RecordId> {
        let bound = AtomicUsize::new(usize::MAX);
        let slots: Vec<Mutex<Vec<RecordId>>> =
            chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
        let block_words = self.block_words();
        self.with_prepared_single(probe, |prep| {
            let Some(prep) = prep else {
                return;
            };
            rayon::scope_for_each(chunks.len(), &|i| {
                let ctl = SweepCtl {
                    words: chunks[i].clone(),
                    from_row: 0,
                    block_words,
                    cancel: Some(&bound),
                    mask,
                };
                if ctl.cancelled(ctl.words.start * 64) {
                    return;
                }
                let mut local = Vec::new();
                prep.scan_one(ctl, &mut |row| {
                    if extra.is_none_or(|f| f(row)) {
                        local.push(row);
                    }
                    local.len() < budget
                });
                if local.len() >= budget {
                    bound.fetch_min(local[budget - 1], Ordering::Relaxed);
                }
                *slots[i].lock().expect("sweep worker panicked") = local;
            });
        });
        let mut out = Vec::new();
        for slot in slots {
            out.append(&mut slot.into_inner().expect("sweep worker panicked"));
            if out.len() >= budget {
                break;
            }
        }
        out.truncate(budget);
        out
    }

    /// Normalizes one probe into the thread-local scratch and hands the
    /// bound [`Prepared`] scan state to `f` (`None` for
    /// dimension-mismatched probes, which match nothing). The
    /// preparation borrows the scratch for `f`'s whole run, so `f` must
    /// not re-enter an arena scan *on this thread* — sweep workers only
    /// read the `Prepared`, and the pool's caller participation runs
    /// nothing but this sweep's own chunks.
    fn with_prepared_single<R>(
        &self,
        probe: &[i64],
        f: impl FnOnce(Option<Prepared<'_>>) -> R,
    ) -> R {
        if self.dim != Some(probe.len()) {
            return f(None);
        }
        let dim = probe.len();
        let (t, ka, rows, live) = (self.t, self.ka, self.rows, self.live_bits.as_slice());
        let (lo, hi) = canonical_range(ka);
        SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            macro_rules! normalize {
                ($buf:ident, $c:ty) => {{
                    s.$buf.clear();
                    s.$buf.extend(
                        probe
                            .iter()
                            .map(|&v| <$c as Cell>::narrow(canonical_fast(v, lo, hi, ka))),
                    );
                }};
            }
            let prep = match &self.cells {
                Cells::I16(v) => {
                    normalize!(i16s, i16);
                    let col = ColumnView {
                        cells: v.as_slice(),
                        live,
                        rows,
                        dim,
                    };
                    if let Some((plane, kernel)) = self.active_plane() {
                        build_filter_probes(
                            &s.i16s,
                            dim,
                            plane.dims(),
                            plane.ka16,
                            plane.probe_quant(),
                            &mut s.biased,
                            &mut s.bcast,
                        );
                        Prepared::Plane {
                            plane,
                            kernel,
                            col,
                            probes: &s.i16s,
                            pf: ProbeFilter {
                                biased: &s.biased,
                                bcast: &s.bcast,
                            },
                        }
                    } else {
                        Prepared::I16 {
                            col,
                            probes: &s.i16s,
                            t,
                            ka,
                        }
                    }
                }
                Cells::I32(v) => {
                    normalize!(i32s, i32);
                    Prepared::I32 {
                        col: ColumnView {
                            cells: v.as_slice(),
                            live,
                            rows,
                            dim,
                        },
                        probes: &s.i32s,
                        t,
                        ka,
                    }
                }
                Cells::I64(v) => {
                    normalize!(i64s, i64);
                    Prepared::I64 {
                        col: ColumnView {
                            cells: v.as_slice(),
                            live,
                            rows,
                            dim,
                        },
                        probes: &s.i64s,
                        t,
                        ka,
                    }
                }
            };
            f(Some(prep))
        })
    }

    /// One blocked scan over the column buffer for a single probe:
    /// normalizes into the thread-local scratch (no per-probe
    /// allocation), then dispatches the two-phase vectorized scan when
    /// the prefilter plane is active and the scalar early-abort kernel
    /// otherwise. No-op for dimension-mismatched probes.
    fn scan_probe(
        &self,
        probe: &[i64],
        from: RecordId,
        on_match: &mut dyn FnMut(RecordId) -> bool,
    ) {
        let ctl = SweepCtl {
            words: from / 64..self.live_bits.len(),
            from_row: from,
            block_words: self.block_words(),
            cancel: None,
            mask: None,
        };
        self.with_prepared_single(probe, |prep| {
            if let Some(prep) = prep {
                prep.scan_one(ctl, on_match);
            }
        });
    }

    /// Drops every row and resets id assignment; the width, `t`, `ka`,
    /// dimension stamp and prefilter plane are retained, as is the
    /// allocated capacity.
    pub fn clear(&mut self) {
        self.cells.clear();
        self.live_bits.clear();
        if let Some(plane) = &mut self.plane {
            plane.clear();
        }
        self.rows = 0;
        self.live = 0;
    }

    /// Reclaims tombstoned rows **in place**: live rows slide down the
    /// same column buffer (preserving order), the bitmap is rebuilt
    /// dense, and the old → new renumbering is returned. No row data is
    /// cloned and no new buffer is allocated.
    pub fn compact(&mut self) -> Vec<(RecordId, RecordId)> {
        let dim = match self.dim {
            Some(dim) if self.live < self.rows => dim,
            // Nothing stored, or nothing tombstoned: identity mapping.
            _ => {
                return (0..self.rows).map(|id| (id, id)).collect();
            }
        };
        let mut mapping = Vec::with_capacity(self.live);
        let mut next = 0usize;
        for id in 0..self.rows {
            if !self.is_live(id) {
                continue;
            }
            if next != id {
                match &mut self.cells {
                    Cells::I16(v) => v.copy_within(id * dim..(id + 1) * dim, next * dim),
                    Cells::I32(v) => v.copy_within(id * dim..(id + 1) * dim, next * dim),
                    Cells::I64(v) => v.copy_within(id * dim..(id + 1) * dim, next * dim),
                }
            }
            mapping.push((id, next));
            next += 1;
        }
        self.rows = next;
        self.cells.truncate(next * dim);
        self.live_bits.clear();
        self.live_bits.resize(next.div_ceil(64), 0);
        for id in 0..next {
            self.live_bits[id / 64] |= 1 << (id % 64);
        }
        self.live = next;
        // The plane's packed words cannot slide at sub-word granularity
        // the way the cells did — rebuild its lanes from the compacted
        // buffer (same O(rows) order as the slide itself).
        if let (Some(plane), Cells::I16(v)) = (&mut self.plane, &self.cells) {
            plane.rebuild(v, next, dim);
        }
        mapping
    }
}

/// How a multi-template record combines its per-template distances into
/// one match decision (the threshold algebra of the matching-modes
/// spec, for two templates `dl`, `dr` and threshold `t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// `max(dl, dr) ≤ t ⇔ (dl ≤ t) ∧ (dr ≤ t)` — *both* templates must
    /// match (the strict mode used for identification and reset).
    Max,
    /// `min(dl, dr) ≤ t ⇔ (dl ≤ t) ∨ (dr ≤ t)` — *either* template
    /// matching suffices (the conservative mode used for uniqueness
    /// checks, where any overlap is a collision).
    Min,
}

/// Multi-template records: two sketches per identity (e.g. left/right
/// eye) stored in **paired arena columns** — two [`SketchArena`]s over
/// the same ring whose rows advance in lockstep, so one [`RecordId`]
/// names both templates.
///
/// Combined lookups evaluate the [`Combine`] threshold algebra as
/// boolean masks over the per-template conditions (1)–(4) decisions:
///
/// * [`Combine::Max`] drives the count-bounded sweep on the *left*
///   column (keeping its prefilter plane) and verifies each phase-2
///   survivor's right-column row before it consumes budget — the
///   AND-combine never forfeits the vectorized phase 1, and bounding
///   the left scan alone would be wrong (the `budget` lowest left
///   matches need not pass the right check).
/// * [`Combine::Min`] runs one bounded sweep per column and merges the
///   ascending hit-lists (OR-combine), deduplicating rows that match on
///   both sides.
///
/// ```rust
/// use fe_core::index::store::{Combine, PairedArena};
///
/// let mut arena = PairedArena::new(100, 400);
/// let id = arena.push(&[10, 20], &[300, -100]);
/// // Both eyes close → Max matches; one eye close → only Min matches.
/// assert_eq!(arena.find_at_most(&[15, 25], &[305, -95], Combine::Max, 2), vec![id]);
/// assert_eq!(arena.find_at_most(&[15, 25], &[100, 100], Combine::Max, 2), vec![]);
/// assert_eq!(arena.find_at_most(&[15, 25], &[100, 100], Combine::Min, 2), vec![id]);
/// ```
#[derive(Debug, Clone)]
pub struct PairedArena {
    left: SketchArena,
    right: SketchArena,
}

impl PairedArena {
    /// Creates an empty paired arena over a ring of circumference `ka`
    /// with threshold `t`, with the default prefilter configuration.
    pub fn new(t: u64, ka: u64) -> PairedArena {
        PairedArena::with_filter(t, ka, FilterConfig::default())
    }

    /// Creates an empty paired arena with an explicit prefilter
    /// configuration (shared by both columns).
    pub fn with_filter(t: u64, ka: u64, filter: FilterConfig) -> PairedArena {
        PairedArena {
            left: SketchArena::with_filter(t, ka, filter),
            right: SketchArena::with_filter(t, ka, filter),
        }
    }

    /// Stores a record's two templates, returning the shared row id.
    /// Both columns stamp their dimension independently, so the two
    /// templates may have different dimensions (each probe side is
    /// checked against its own column).
    ///
    /// # Panics
    /// Panics if either template's dimension differs from its column's
    /// stamped dimension.
    pub fn push(&mut self, left: &[i64], right: &[i64]) -> RecordId {
        let id = self.left.push(left);
        let rid = self.right.push(right);
        debug_assert_eq!(id, rid, "paired columns must advance in lockstep");
        id
    }

    /// Tombstones a record in both columns. Returns `false` if the id
    /// was unknown or already removed.
    pub fn remove(&mut self, id: RecordId) -> bool {
        let l = self.left.remove(id);
        let r = self.right.remove(id);
        debug_assert_eq!(l, r, "paired columns must tombstone in lockstep");
        l && r
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// `true` when no records are live.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }

    /// Total record slots held, live and tombstoned.
    pub fn rows(&self) -> usize {
        self.left.rows()
    }

    /// The left template column.
    pub fn left(&self) -> &SketchArena {
        &self.left
    }

    /// The right template column.
    pub fn right(&self) -> &SketchArena {
        &self.right
    }

    /// The `budget` lowest-id live records whose combined decision
    /// matches the probe pair, ascending (see the type docs for how
    /// each [`Combine`] evaluates). A probe side whose dimension
    /// differs from its column's stamp matches nothing on that side.
    pub fn find_at_most(
        &self,
        left_probe: &[i64],
        right_probe: &[i64],
        combine: Combine,
        budget: usize,
    ) -> Vec<RecordId> {
        self.find_combined(left_probe, right_probe, combine, None, budget)
    }

    /// [`PairedArena::find_at_most`] restricted to the rows selected by
    /// `mask` (the subset + min-combine shape of local-uniqueness
    /// checks).
    pub fn find_at_most_masked(
        &self,
        left_probe: &[i64],
        right_probe: &[i64],
        combine: Combine,
        mask: &RowMask,
        budget: usize,
    ) -> Vec<RecordId> {
        self.find_combined(left_probe, right_probe, combine, Some(mask), budget)
    }

    fn find_combined(
        &self,
        left_probe: &[i64],
        right_probe: &[i64],
        combine: Combine,
        mask: Option<&RowMask>,
        budget: usize,
    ) -> Vec<RecordId> {
        match combine {
            Combine::Max => {
                // AND-combine: the left column's bounded sweep keeps
                // its prefilter; each left survivor verifies its right
                // row before consuming budget.
                let Some(right_probe) = self.right.normalize_probe(right_probe) else {
                    return Vec::new();
                };
                let verify_right = |row: RecordId| self.right.row_matches(row, &right_probe);
                self.left
                    .find_bounded(left_probe, mask, budget, Some(&verify_right))
            }
            Combine::Min => {
                // OR-combine: bounded sweep per column, merged
                // ascending with dedup. Each side's `budget` lowest
                // together cover the union's `budget` lowest.
                let l = self.left.find_bounded(left_probe, mask, budget, None);
                let r = self.right.find_bounded(right_probe, mask, budget, None);
                let mut out = Vec::with_capacity(l.len() + r.len());
                let (mut i, mut j) = (0, 0);
                while out.len() < budget && (i < l.len() || j < r.len()) {
                    let next = match (l.get(i), r.get(j)) {
                        (Some(&a), Some(&b)) if a == b => {
                            i += 1;
                            j += 1;
                            a
                        }
                        (Some(&a), Some(&b)) if a < b => {
                            i += 1;
                            a
                        }
                        (Some(_), Some(&b)) => {
                            j += 1;
                            b
                        }
                        (Some(&a), None) => {
                            i += 1;
                            a
                        }
                        (None, Some(&b)) => {
                            j += 1;
                            b
                        }
                        (None, None) => unreachable!("loop condition"),
                    };
                    out.push(next);
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_follows_ring() {
        assert_eq!(CellWidth::for_ring(400), CellWidth::I16);
        assert_eq!(CellWidth::for_ring((1 << 15) - 1), CellWidth::I16);
        assert_eq!(CellWidth::for_ring(1 << 15), CellWidth::I32);
        assert_eq!(CellWidth::for_ring((1 << 31) - 1), CellWidth::I32);
        assert_eq!(CellWidth::for_ring(1 << 31), CellWidth::I64);
        assert_eq!(CellWidth::for_ring(u64::MAX), CellWidth::I64);
    }

    #[test]
    fn canonical_is_minimal_residue() {
        assert_eq!(canonical(0, 400), 0);
        assert_eq!(canonical(200, 400), 200);
        assert_eq!(canonical(201, 400), -199);
        assert_eq!(canonical(-200, 400), 200);
        assert_eq!(canonical(400, 400), 0);
        assert_eq!(canonical(300, 400), -100);
        assert_eq!(canonical(-300, 400), 100);
        assert_eq!(canonical(i64::MIN, 400), canonical(i64::MIN % 400, 400));
        // Odd ring: residues span [−(ka−1)/2, (ka−1)/2].
        for v in -20..20 {
            let c = canonical(v, 7);
            assert!((-3..=3).contains(&c), "canonical({v}, 7) = {c}");
            assert_eq!((v - c).rem_euclid(7), 0);
        }
    }

    #[test]
    fn kernel_matches_cyclic_close_on_canonical_values() {
        use crate::conditions::cyclic_close;
        let ka = 40u64;
        for t in [1u64, 5, 19] {
            for a in -60i64..60 {
                for b in -60i64..60 {
                    let ca = canonical(a, ka);
                    let cb = canonical(b, ka);
                    let d = (ca - cb).unsigned_abs();
                    assert_eq!(
                        d.min(ka - d) <= t,
                        cyclic_close(a, b, t, ka),
                        "a={a} b={b} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn push_remove_compact_roundtrip() {
        let mut arena = SketchArena::new(100, 400);
        for i in 0..130i64 {
            assert_eq!(arena.push(&[i, -i, 2 * i]), i as usize);
        }
        assert_eq!((arena.len(), arena.rows()), (130, 130));
        for id in (0..130).step_by(3) {
            assert!(arena.remove(id));
            assert!(!arena.remove(id), "double remove");
        }
        assert_eq!(arena.len(), 130 - 44);
        let mapping = arena.compact();
        assert_eq!(mapping.len(), 86);
        assert_eq!((arena.len(), arena.rows()), (86, 86));
        // Survivors keep their data (in canonical ring form) under new
        // dense ids.
        for &(old, new) in &mapping {
            let old = old as i64;
            let expect: Vec<i64> = [old, -old, 2 * old]
                .iter()
                .map(|&v| canonical(v, 400))
                .collect();
            assert_eq!(arena.row(new), Some(expect));
        }
        // A compacted arena accepts fresh rows at the next dense id.
        assert_eq!(arena.push(&[1, 2, 3]), 86);
    }

    #[test]
    fn compact_without_tombstones_is_identity() {
        let mut arena = SketchArena::new(10, 400);
        arena.push(&[1, 2]);
        arena.push(&[3, 4]);
        assert_eq!(arena.compact(), vec![(0, 0), (1, 1)]);
        assert_eq!(arena.row(1), Some(vec![3, 4]));
    }

    #[test]
    fn probe_dimension_mismatch_matches_nothing() {
        let mut arena = SketchArena::new(100, 400);
        arena.push(&[1, 2, 3]);
        assert_eq!(arena.find_first(&[1, 2]), None);
        assert_eq!(arena.find_all(&[1, 2, 3, 4]), Vec::<RecordId>::new());
        assert!(arena.normalize_probe(&[1, 2]).is_none());
    }

    #[test]
    #[should_panic(expected = "stamped dimension")]
    fn insert_dimension_mismatch_panics() {
        let mut arena = SketchArena::new(100, 400);
        arena.push(&[1, 2, 3]);
        arena.push(&[1, 2]);
    }

    #[test]
    fn out_of_range_coordinates_match_cyclically() {
        // 300 ≡ −100 (mod 400); the arena stores the canonical form and
        // conditions (1)–(4) cannot tell the difference.
        let mut arena = SketchArena::new(100, 400);
        let id = arena.push(&[300, 20]);
        assert_eq!(arena.find_first(&[-100, 20]), Some(id));
        assert_eq!(arena.find_first(&[300 + 400, 20 - 400]), Some(id));
        assert_eq!(arena.row(id), Some(vec![-100, 20]));
    }

    #[test]
    fn huge_ring_kernel_does_not_overflow() {
        // ka > 2⁶³: canonical values span nearly the whole i64 range, so
        // the kernel's subtraction must widen (regression: i64 overflow).
        let ka = u64::MAX;
        let mut arena = SketchArena::new(1 << 40, ka);
        let (lo, hi) = canonical_range(ka);
        let a = arena.push(&[hi, lo]);
        // Distance from (hi, lo) to (lo, hi) is 1 step around the ring
        // in each coordinate — within t.
        assert_eq!(arena.find_first(&[lo, hi]), Some(a));
        // The antipode is ~ka/2 away — far outside t.
        assert_eq!(arena.find_first(&[0, 0]), None);
    }

    #[test]
    fn wide_rings_use_wide_cells() {
        for ka in [1u64 << 20, 1 << 40] {
            let half = (ka / 2) as i64;
            let mut arena = SketchArena::new(1000, ka);
            let a = arena.push(&[half - 5, -half + 5]);
            assert_eq!(arena.find_first(&[half - 900, -half + 900]), Some(a));
            assert_eq!(arena.find_first(&[0, 0]), None);
            assert_eq!(arena.row(a), Some(vec![half - 5, -half + 5]));
        }
    }

    #[test]
    fn heap_bytes_tracks_width() {
        // Filter disabled so the comparison isolates the cell width
        // (the i64 arena can never build a plane anyway).
        let mut narrow = SketchArena::with_filter(100, 400, FilterConfig::disabled());
        narrow.reserve(64, 8);
        let mut wide = SketchArena::with_capacity(100, 1 << 40, 64, 8);
        for i in 0..64i64 {
            narrow.push(&[i; 8]);
            wide.push(&[i; 8]);
        }
        assert!(narrow.heap_bytes() >= 64 * 8 * 2 + 8);
        assert!(
            narrow.heap_bytes() * 3 < wide.heap_bytes(),
            "i16 cells must be ~4× smaller than i64: {} vs {}",
            narrow.heap_bytes(),
            wide.heap_bytes()
        );
        // The prefilter plane is accounted for: an identical filtered
        // arena holds strictly more heap (1 extra byte per plane cell
        // on the default quantized byte plane, 2 on a pinned 16-bit
        // plane).
        let mut filtered = SketchArena::with_capacity(100, 400, 64, 8);
        let mut filtered16 = SketchArena::with_filter(
            100,
            400,
            FilterConfig::default().with_width(PlaneWidth::U16),
        );
        filtered16.reserve(64, 8);
        for i in 0..64i64 {
            filtered.push(&[i; 8]);
            filtered16.push(&[i; 8]);
        }
        assert_eq!(filtered.plane_width(), "u8");
        assert_eq!(filtered16.plane_width(), "u16");
        assert!(
            filtered.heap_bytes() >= narrow.heap_bytes() + 64 * 8,
            "byte-plane bytes missing from heap_bytes: {} vs {}",
            filtered.heap_bytes(),
            narrow.heap_bytes()
        );
        assert!(
            filtered16.heap_bytes() >= narrow.heap_bytes() + 64 * 8 * 2,
            "u16-plane bytes missing from heap_bytes: {} vs {}",
            filtered16.heap_bytes(),
            narrow.heap_bytes()
        );
    }

    #[test]
    fn for_each_live_streams_in_order() {
        let mut arena = SketchArena::new(100, 400);
        for i in 0..9i64 {
            arena.push(&[i, i]);
        }
        arena.remove(4);
        let mut seen = Vec::new();
        arena.for_each_live(|id, row| seen.push((id, row.to_vec())));
        assert_eq!(seen.len(), 8);
        assert_eq!(seen[4], (5, vec![5, 5]));
    }

    #[test]
    fn batch_scan_agrees_with_per_probe_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        for ka in [400u64, 1 << 20, 1 << 40] {
            let t = ka / 4;
            let mut arena = SketchArena::new(t, ka);
            let half = (ka / 2) as i64;
            let rows: Vec<Vec<i64>> = (0..300)
                .map(|_| (0..8).map(|_| rng.gen_range(-half..=half)).collect())
                .collect();
            for row in &rows {
                arena.push(row);
            }
            for id in (0..300).step_by(5) {
                arena.remove(id);
            }
            // Genuine probes (noise within t), impostors, and a
            // wrong-dimension probe in one batch.
            let mut probes: Vec<Vec<i64>> = rows
                .iter()
                .step_by(7)
                .map(|row| {
                    row.iter()
                        .map(|&v| v + rng.gen_range(-(t as i64)..=t as i64))
                        .collect()
                })
                .collect();
            probes.push(vec![0; 8]);
            probes.push(vec![1, 2, 3]);
            let batch = arena.find_first_batch(&probes);
            let single: Vec<Option<RecordId>> =
                probes.iter().map(|p| arena.find_first(p)).collect();
            assert_eq!(batch, single, "ka = {ka}");
        }
    }

    #[test]
    fn batch_scan_on_empty_and_unstamped_arena() {
        let arena = SketchArena::new(100, 400);
        assert_eq!(arena.find_first_batch(&[vec![1, 2]]), vec![None]);
        let mut arena = SketchArena::new(100, 400);
        let a = arena.push(&[5, 5]);
        arena.remove(a);
        assert_eq!(arena.find_first_batch(&[vec![5, 5]]), vec![None]);
        assert_eq!(arena.find_first_batch(&[]), Vec::<Option<RecordId>>::new());
    }

    /// Drives a filtered arena and a scalar (filter-disabled) arena
    /// through the same random population and probes, comparing every
    /// lookup entry point.
    fn check_filtered_matches_scalar(filter: FilterConfig, t: u64, ka: u64, dim: usize) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF1C7 ^ t ^ ka ^ dim as u64);
        let mut filtered = SketchArena::with_filter(t, ka, filter);
        let mut scalar = SketchArena::with_filter(t, ka, FilterConfig::disabled());
        assert_eq!(scalar.filter_kernel(), "scalar");
        let half = (ka / 2) as i64;
        let span = half.max(1);
        for _ in 0..300 {
            let row: Vec<i64> = (0..dim).map(|_| rng.gen_range(-span..=span)).collect();
            assert_eq!(filtered.push(&row), scalar.push(&row));
        }
        for id in (0..300).step_by(7) {
            assert_eq!(filtered.remove(id), scalar.remove(id));
        }
        // Probes: genuine-ish (near an enrolled row), impostors, and a
        // wrong dimension; exercised through every entry point.
        let mut probes: Vec<Vec<i64>> = Vec::new();
        for base in (0..300).step_by(11) {
            let row = scalar.row(base).or_else(|| scalar.row(base + 1));
            if let Some(row) = row {
                let t_span = t.min(i64::MAX as u64) as i64;
                probes.push(
                    row.iter()
                        .map(|&v| v.saturating_add(rng.gen_range(-t_span..=t_span)))
                        .collect(),
                );
            }
        }
        for _ in 0..20 {
            probes.push((0..dim).map(|_| rng.gen_range(-span..=span)).collect());
        }
        probes.push(vec![0; dim + 1]);
        for probe in &probes {
            assert_eq!(filtered.find_first(probe), scalar.find_first(probe));
            assert_eq!(filtered.find_all(probe), scalar.find_all(probe));
            assert_eq!(filtered.find_from(probe, 150), scalar.find_from(probe, 150));
        }
        assert_eq!(
            filtered.find_first_batch(&probes),
            scalar.find_first_batch(&probes)
        );
        // And again after compaction rebuilds the plane.
        assert_eq!(filtered.compact(), scalar.compact());
        for probe in &probes {
            assert_eq!(filtered.find_first(probe), scalar.find_first(probe));
            assert_eq!(filtered.find_all(probe), scalar.find_all(probe));
        }
        assert_eq!(
            filtered.find_first_batch(&probes),
            scalar.find_first_batch(&probes)
        );
    }

    #[test]
    fn swar_prefilter_matches_scalar() {
        // Paper ring; dim > plane (suffix verify), dim == plane (pure
        // prefilter), dim < plane (clamped plane).
        for dim in [32, 8, 3] {
            check_filtered_matches_scalar(FilterConfig::swar(), 100, 400, dim);
        }
        // Tiny and odd rings.
        check_filtered_matches_scalar(FilterConfig::swar(), 1, 7, 5);
        check_filtered_matches_scalar(FilterConfig::swar(), 0, 2, 4);
        // Largest i16 ring.
        check_filtered_matches_scalar(FilterConfig::swar(), 1000, (1 << 15) - 1, 12);
    }

    #[test]
    fn auto_prefilter_matches_scalar() {
        // On x86-64 this exercises the widest available SIMD path
        // (including the SWAR tail for partial vectors); elsewhere it
        // re-checks SWAR through the Auto dispatch.
        for dim in [32, 8, 3] {
            check_filtered_matches_scalar(FilterConfig::default(), 100, 400, dim);
        }
        check_filtered_matches_scalar(FilterConfig::default(), 25, 101, 9);
    }

    #[test]
    fn avx2_pin_matches_scalar() {
        // The ablation knob that caps dispatch at AVX2 (SWAR off
        // x86-64) must stay result-identical too.
        let pinned = FilterConfig::default().with_kernel(FilterKernel::Avx2);
        for dim in [32, 8, 3] {
            check_filtered_matches_scalar(pinned, 100, 400, dim);
        }
    }

    #[test]
    fn fixed_depth_matches_scalar() {
        for depth in [1, 3, 8, 16] {
            check_filtered_matches_scalar(
                FilterConfig::default().with_depth(PlaneDepth::Fixed(depth)),
                100,
                400,
                12,
            );
        }
    }

    #[test]
    fn block_size_variants_match_scalar() {
        // The ablation block sizes, plus degenerate values that clamp.
        for block_rows in [64, 128, 256, 1, 4096] {
            check_filtered_matches_scalar(
                FilterConfig::default().with_block_rows(block_rows),
                100,
                400,
                12,
            );
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        rayon::ensure_threads(4);
        for threads in [2, 4, 0] {
            let par = ParallelConfig::forced(threads);
            // Vectorized plane sweep in parallel vs sequential scalar.
            check_filtered_matches_scalar(FilterConfig::default().with_parallel(par), 100, 400, 12);
            // Parallel *scalar* sweeps on every cell width.
            check_filtered_matches_scalar(FilterConfig::disabled().with_parallel(par), 100, 400, 8);
            check_filtered_matches_scalar(
                FilterConfig::default().with_parallel(par),
                1 << 18,
                1 << 20,
                8,
            );
            check_filtered_matches_scalar(
                FilterConfig::default().with_parallel(par),
                1 << 38,
                1 << 40,
                8,
            );
        }
    }

    #[test]
    fn parallel_cancellation_keeps_lowest_match() {
        // Identical rows everywhere: every chunk finds a match, the
        // later chunks' finds must all lose to row 0. Run repeatedly to
        // shake scheduling interleavings.
        rayon::ensure_threads(4);
        let mut arena = SketchArena::with_filter(
            100,
            400,
            FilterConfig::default().with_parallel(ParallelConfig::forced(4)),
        );
        for _ in 0..1000 {
            arena.push(&[7, -7, 7, -7]);
        }
        for _ in 0..50 {
            assert_eq!(arena.find_first(&[7, -7, 7, -7]), Some(0));
        }
        // With the first rows dead, the lowest live id must win.
        for id in 0..130 {
            arena.remove(id);
        }
        for _ in 0..50 {
            assert_eq!(arena.find_first(&[7, -7, 7, -7]), Some(130));
            assert_eq!(arena.find_from(&[7, -7, 7, -7], 700), Some(700));
        }
    }

    #[test]
    fn adaptive_depth_model() {
        // Paper ring: pass rate 201/400 ≈ ½ → exactly the previously
        // hard-coded 8 lanes.
        assert_eq!(adaptive_depth(100, 400), 8);
        // Rate exactly ½: (½)⁷ = 1/128 hits the target at 7 lanes.
        assert_eq!(adaptive_depth(0, 2), 7);
        // Rate 3/7: 6 lanes clear 1/128.
        assert_eq!(adaptive_depth(1, 7), 6);
        // Nothing to reject: every coordinate always passes.
        assert_eq!(adaptive_depth(399, 400), 0);
        assert_eq!(adaptive_depth(200, 400), 0);
        assert_eq!(adaptive_depth(u64::MAX, 400), 0);
        // Huge sparse ring: one lane rejects nearly everything.
        assert_eq!(adaptive_depth(0, u64::MAX), 1);
        // Near-1 pass rate: capped at MAX_ADAPTIVE_DIMS.
        assert_eq!(adaptive_depth(199, 400), FilterConfig::MAX_ADAPTIVE_DIMS);
        // Deeper adaptive planes clamp to the sketch dimension.
        let mut arena = SketchArena::new(199, 402);
        arena.push(&[1, 2, 3]);
        assert_eq!(arena.plane_dims(), 3);
        assert_eq!(arena.resolved_depth(), FilterConfig::MAX_ADAPTIVE_DIMS);
    }

    #[test]
    fn neon_kernel_matches_swar() {
        // The NEON kernel body runs everywhere through the emulated
        // `intr` façade: its 8-row masks must equal two SWAR words.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x9E09);
        for (t, ka) in [(100u64, 400u64), (1, 7), (1000, (1 << 15) - 1)] {
            let mut plane = FilterPlane::new(3, t, ka, PlaneRepr::U16);
            for row in 0..64 {
                let coords: [i16; 3] =
                    std::array::from_fn(|_| canonical(rng.gen_range(0..ka as i64), ka) as i16);
                plane.push_row(row, &coords);
            }
            for _ in 0..40 {
                let probe: Vec<u16> = (0..3)
                    .map(|_| bias16(canonical(rng.gen_range(0..ka as i64), ka) as i16, ka as u16))
                    .collect();
                let bcast: Vec<u64> = probe.iter().map(|&b| u64::from(b) * LANES).collect();
                let pf = ProbeFilter {
                    biased: &probe,
                    bcast: &bcast,
                };
                for wi in (0..16).step_by(2) {
                    let neon = neon::eight(&plane.lanes, &probe, plane.cmp_t, plane.cmp_ka, wi);
                    let swar = plane.swar_word(pf, wi) | (plane.swar_word(pf, wi + 1) << 4);
                    assert_eq!(u64::from(neon), swar, "t={t} ka={ka} wi={wi}");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_kernel_matches_swar() {
        if !avx512::available() {
            return;
        }
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5125);
        for (t, ka) in [(100u64, 400u64), (1, 7), (1000, (1 << 15) - 1)] {
            let mut plane = FilterPlane::new(4, t, ka, PlaneRepr::U16);
            for row in 0..64 {
                let coords: [i16; 4] =
                    std::array::from_fn(|_| canonical(rng.gen_range(0..ka as i64), ka) as i16);
                plane.push_row(row, &coords);
            }
            for _ in 0..40 {
                let probe: Vec<u16> = (0..4)
                    .map(|_| bias16(canonical(rng.gen_range(0..ka as i64), ka) as i16, ka as u16))
                    .collect();
                let bcast: Vec<u64> = probe.iter().map(|&b| u64::from(b) * LANES).collect();
                let pf = ProbeFilter {
                    biased: &probe,
                    bcast: &bcast,
                };
                for wi in [0, 8] {
                    let wide = avx512::octo(&plane.lanes, &probe, plane.cmp_t, plane.cmp_ka, wi);
                    let mut swar = 0u64;
                    for sub in 0..8 {
                        swar |= plane.swar_word(pf, wi + sub) << (sub * 4);
                    }
                    assert_eq!(u64::from(wide), swar, "t={t} ka={ka} wi={wi}");
                }
            }
        }
    }

    #[test]
    fn threshold_above_half_ring_matches_everything() {
        // t ≥ ka/2 means every row matches; adaptive depth resolves to
        // 0 (no plane could reject), and a pinned fixed-depth plane
        // clamps t_eff — both must agree with the scalar kernel.
        check_filtered_matches_scalar(FilterConfig::swar(), 399, 400, 6);
        check_filtered_matches_scalar(
            FilterConfig::swar().with_depth(PlaneDepth::Fixed(8)),
            399,
            400,
            6,
        );
        check_filtered_matches_scalar(FilterConfig::default(), u64::MAX, 400, 6);
        let mut arena = SketchArena::new(u64::MAX, 400);
        let a = arena.push(&[0, 0]);
        assert_eq!(arena.find_first(&[199, -200]), Some(a));
    }

    #[test]
    fn plane_only_exists_on_i16_rings() {
        for (ka, expect_dims) in [(400u64, 8), (1 << 20, 0), (1 << 40, 0)] {
            let mut arena = SketchArena::new(100, ka);
            arena.push(&[1; 16]);
            assert_eq!(arena.plane_dims(), expect_dims, "ka = {ka}");
            if expect_dims == 0 {
                assert_eq!(arena.filter_kernel(), "scalar");
            } else {
                assert_ne!(arena.filter_kernel(), "scalar");
            }
        }
        // Disabled config never builds a plane, even on the paper ring.
        let mut arena = SketchArena::with_filter(100, 400, FilterConfig::disabled());
        arena.push(&[1; 16]);
        assert_eq!(arena.plane_dims(), 0);
        // The plane is clamped to the sketch dimension.
        let mut arena = SketchArena::new(100, 400);
        arena.push(&[1, 2, 3]);
        assert_eq!(arena.plane_dims(), 3);
    }

    #[test]
    fn reserve_presizes_the_plane() {
        let mut arena = SketchArena::new(100, 400);
        arena.reserve(500, 16);
        assert_eq!(arena.plane_dims(), 8);
        let sized = arena.heap_bytes();
        for i in 0..500i64 {
            arena.push(&[i % 200; 16]);
        }
        assert_eq!(
            arena.heap_bytes(),
            sized,
            "a pre-sized bulk load must not reallocate cells, bitmap, or plane"
        );
    }

    #[test]
    fn swar_word_algebra_is_exact() {
        // Exhaustive single-coordinate check of the SWAR lane math
        // against the scalar predicate, on an awkward odd ring.
        let ka = 401u64;
        for t in [0u64, 1, 57, 200, 400] {
            let plane = FilterPlane::new(1, t, ka, PlaneRepr::U16);
            for a in 0..ka as i64 {
                let mut lanes = vec![Vec::new()];
                let c = canonical(a, ka) as i16;
                // Pack the same row value in all four lanes.
                let b = u64::from(bias16(c, ka as u16));
                lanes[0].push(b * LANES);
                let plane = FilterPlane {
                    lanes,
                    ..plane.clone()
                };
                for bval in (0..ka as i64).step_by(7) {
                    let pc = canonical(bval, ka) as i16;
                    let pb = u64::from(bias16(pc, ka as u16)) * LANES;
                    let biased = [bias16(pc, ka as u16)];
                    let bcast = [pb];
                    let pf = ProbeFilter {
                        biased: &biased,
                        bcast: &bcast,
                    };
                    let mask = plane.swar_word(pf, 0);
                    let expect = crate::conditions::cyclic_close(a, bval, t, ka);
                    assert_eq!(mask == 0xF, expect, "a={a} b={bval} t={t}: mask {mask:#x}");
                    assert!(mask == 0 || mask == 0xF, "lanes disagree: {mask:#x}");
                }
            }
        }
    }

    #[test]
    fn find_from_resumes_past_matches() {
        let mut arena = SketchArena::new(100, 400);
        arena.push(&[10, 10]);
        arena.push(&[500, 500]); // stored as its canonical form, 100
        arena.push(&[15, 15]);
        let first = arena.find_first(&[12, 12]).unwrap();
        assert_eq!(first, 0);
        let next = arena.find_from(&[12, 12], first + 1);
        // Row 1 stores canonical(500) = 100: distance to 12 is 88 ≤ t,
        // so it genuinely matches too.
        assert_eq!(next, Some(1));
        assert_eq!(arena.find_from(&[12, 12], 3), None);
    }

    #[test]
    fn quantize_ring_model() {
        // Paper ring: q = 2 → 200 buckets, tq = ⌈100/2⌉ + 1 = 51.
        assert_eq!(quantize_ring(100, 400), (2, 200, 51));
        // Byte-native rings (ka ≤ 256): no quantization, no slack.
        assert_eq!(quantize_ring(100, 256), (1, 256, 100));
        assert_eq!(quantize_ring(1, 7), (1, 7, 1));
        // Largest i16 ring: q = 128 → exactly 256 buckets (the kernels
        // broadcast the wrapped 0; see `neon::sixteen`).
        assert_eq!(quantize_ring(1000, (1 << 15) - 1), (128, 256, 9));
        // t clamps to the half-ring before quantizing, and tq clamps to
        // the half-bucket-ring.
        assert_eq!(quantize_ring(u64::MAX, 400), (2, 200, 100));

        // Eligibility cliff: 2·tq+1 must stay below the bucket count.
        assert!(byte_plane_eligible(100, 400));
        assert!(byte_plane_eligible(0, 400));
        // 2t+1 = 255 < 256 buckets — barely eligible.
        assert!(byte_plane_eligible(127, 256));
        // Same threshold, one bucket fewer: 255 ≥ 255.
        assert!(!byte_plane_eligible(127, 255));
        // tq saturates at kq/2 = 100: 201 ≥ 200 buckets.
        assert!(!byte_plane_eligible(198, 400));
        // Rings wider than i16 never build any plane.
        assert!(!byte_plane_eligible(100, 1 << 20));

        // Byte-plane adaptive depth at the paper ring: bucket pass rate
        // 103/200 ≈ ½ lands on the same 8 lanes as the exact plane.
        assert_eq!(adaptive_depth_for_rate(2 * 51 + 1, 200), 8);
    }

    #[test]
    fn auto_width_resolution() {
        // Paper ring, default config: Auto picks the byte plane (equal
        // adaptive depth, half the traffic).
        let mut arena = SketchArena::new(100, 400);
        arena.push(&[1; 16]);
        assert_eq!(arena.plane_width(), "u8");
        assert_eq!(arena.resolved_depth(), 8);
        // Pinning U16 keeps the exact plane.
        let mut arena = SketchArena::with_filter(
            100,
            400,
            FilterConfig::default().with_width(PlaneWidth::U16),
        );
        arena.push(&[1; 16]);
        assert_eq!(arena.plane_width(), "u16");
        // U8 on an ineligible ring (2·tq+1 ≥ kq) silently falls back.
        let mut arena =
            SketchArena::with_filter(198, 400, FilterConfig::default().with_width(PlaneWidth::U8));
        arena.push(&[1; 16]);
        assert_eq!(arena.plane_width(), "u16");
        // Wider rings never build a plane, whatever the knob says.
        let mut arena = SketchArena::with_filter(
            100,
            1 << 20,
            FilterConfig::default().with_width(PlaneWidth::U8),
        );
        arena.push(&[1; 16]);
        assert_eq!(arena.plane_width(), "none");
        // Disabled filter: no plane either.
        let mut arena = SketchArena::with_filter(100, 400, FilterConfig::disabled());
        arena.push(&[1; 16]);
        assert_eq!(arena.plane_width(), "none");
    }

    #[test]
    fn byte_plane_matches_scalar() {
        // Pinned byte plane across the dim/plane size relations the u16
        // tests cover, through the widest available dispatch.
        for dim in [32, 8, 3] {
            check_filtered_matches_scalar(
                FilterConfig::default().with_width(PlaneWidth::U8),
                100,
                400,
                dim,
            );
        }
        // The portable SWAR u8 word (even/odd byte split) explicitly.
        let swar8 = FilterConfig::swar().with_width(PlaneWidth::U8);
        check_filtered_matches_scalar(swar8, 100, 400, 12);
        // q = 1 rings: buckets are the residues themselves.
        check_filtered_matches_scalar(swar8, 1, 7, 5);
        check_filtered_matches_scalar(swar8, 100, 256, 6);
        // Largest i16 ring: q = 128, kq = 256 — the wrapped broadcast.
        check_filtered_matches_scalar(swar8, 1000, (1 << 15) - 1, 12);
        check_filtered_matches_scalar(
            FilterConfig::default().with_width(PlaneWidth::U8),
            1000,
            (1 << 15) - 1,
            12,
        );
        // Ineligible ring: the knob falls back to u16, results identical.
        check_filtered_matches_scalar(
            FilterConfig::default().with_width(PlaneWidth::U8),
            198,
            400,
            6,
        );
        // AVX2 pin (SWAR off x86-64) on the byte plane.
        check_filtered_matches_scalar(
            FilterConfig::default()
                .with_kernel(FilterKernel::Avx2)
                .with_width(PlaneWidth::U8),
            100,
            400,
            12,
        );
        // Fixed depths, including deeper than the sketch.
        for depth in [1, 3, 16] {
            check_filtered_matches_scalar(
                FilterConfig::default()
                    .with_width(PlaneWidth::U8)
                    .with_depth(PlaneDepth::Fixed(depth)),
                100,
                400,
                12,
            );
        }
    }

    #[test]
    fn neon_u8_kernel_matches_swar() {
        // The NEON byte kernel runs everywhere through the emulated
        // `intr` façade: its 16-row masks must equal two SWAR u8 words.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x8E08);
        for (t, ka) in [(100u64, 400u64), (1, 7), (1000, (1 << 15) - 1)] {
            let (q, _, _) = quantize_ring(t, ka);
            let mut plane = FilterPlane::new(3, t, ka, PlaneRepr::U8 { q });
            for row in 0..128 {
                let coords: [i16; 3] =
                    std::array::from_fn(|_| canonical(rng.gen_range(0..ka as i64), ka) as i16);
                plane.push_row(row, &coords);
            }
            for _ in 0..40 {
                let probe: Vec<u16> = (0..3)
                    .map(|_| {
                        bias16(canonical(rng.gen_range(0..ka as i64), ka) as i16, ka as u16) / q
                    })
                    .collect();
                let bcast: Vec<u64> = probe.iter().map(|&b| u64::from(b) * LANES).collect();
                let pf = ProbeFilter {
                    biased: &probe,
                    bcast: &bcast,
                };
                for wi in (0..16).step_by(2) {
                    let neon = neon::sixteen(&plane.lanes, &probe, plane.cmp_t, plane.cmp_ka, wi);
                    let swar = plane.swar_word_u8(pf, wi) | (plane.swar_word_u8(pf, wi + 1) << 8);
                    assert_eq!(u64::from(neon), swar, "t={t} ka={ka} wi={wi}");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_u8_kernel_matches_swar() {
        if !avx2::available() {
            return;
        }
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA208);
        for (t, ka) in [(100u64, 400u64), (1, 7), (1000, (1 << 15) - 1)] {
            let (q, _, _) = quantize_ring(t, ka);
            let mut plane = FilterPlane::new(4, t, ka, PlaneRepr::U8 { q });
            for row in 0..128 {
                let coords: [i16; 4] =
                    std::array::from_fn(|_| canonical(rng.gen_range(0..ka as i64), ka) as i16);
                plane.push_row(row, &coords);
            }
            for _ in 0..40 {
                let probe: Vec<u16> = (0..4)
                    .map(|_| {
                        bias16(canonical(rng.gen_range(0..ka as i64), ka) as i16, ka as u16) / q
                    })
                    .collect();
                let bcast: Vec<u64> = probe.iter().map(|&b| u64::from(b) * LANES).collect();
                let pf = ProbeFilter {
                    biased: &probe,
                    bcast: &bcast,
                };
                for wi in (0..16).step_by(4) {
                    let wide = avx2::quad8(&plane.lanes, &probe, plane.cmp_t, plane.cmp_ka, wi);
                    let mut swar = 0u64;
                    for sub in 0..4 {
                        swar |= plane.swar_word_u8(pf, wi + sub) << (sub * 8);
                    }
                    assert_eq!(u64::from(wide), swar, "t={t} ka={ka} wi={wi}");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_u8_kernel_matches_swar() {
        if !avx512::available() {
            return;
        }
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5128);
        for (t, ka) in [(100u64, 400u64), (1, 7), (1000, (1 << 15) - 1)] {
            let (q, _, _) = quantize_ring(t, ka);
            let mut plane = FilterPlane::new(4, t, ka, PlaneRepr::U8 { q });
            for row in 0..128 {
                let coords: [i16; 4] =
                    std::array::from_fn(|_| canonical(rng.gen_range(0..ka as i64), ka) as i16);
                plane.push_row(row, &coords);
            }
            for _ in 0..40 {
                let probe: Vec<u16> = (0..4)
                    .map(|_| {
                        bias16(canonical(rng.gen_range(0..ka as i64), ka) as i16, ka as u16) / q
                    })
                    .collect();
                let bcast: Vec<u64> = probe.iter().map(|&b| u64::from(b) * LANES).collect();
                let pf = ProbeFilter {
                    biased: &probe,
                    bcast: &bcast,
                };
                for wi in [0, 8] {
                    let wide = avx512::octo8(&plane.lanes, &probe, plane.cmp_t, plane.cmp_ka, wi);
                    let mut swar = 0u64;
                    for sub in 0..8 {
                        swar |= plane.swar_word_u8(pf, wi + sub) << (sub * 8);
                    }
                    assert_eq!(wide, swar, "t={t} ka={ka} wi={wi}");
                }
            }
        }
    }

    #[test]
    fn swar_word_u8_implements_bucket_predicate() {
        // Exhaustive single-coordinate check of the u8 SWAR algebra on
        // an awkward odd ring (q = 2, kq = 201): the mask must equal
        // the bucket-distance predicate exactly, and must accept every
        // pair the scalar residue predicate accepts (over-accept only —
        // phase 2 can prune, never resurrect).
        let ka = 401u64;
        for t in [0u64, 1, 57, 100, 199] {
            let (q, kq, tq) = quantize_ring(t, ka);
            let plane = FilterPlane::new(1, t, ka, PlaneRepr::U8 { q });
            for a in 0..ka as i64 {
                let row_bucket = bias16(canonical(a, ka) as i16, ka as u16) / q;
                // Pack the same row bucket in all eight byte slots.
                let lanes = vec![vec![u64::from(row_bucket) * 0x0101_0101_0101_0101]];
                let plane = FilterPlane {
                    lanes,
                    ..plane.clone()
                };
                for bval in (0..ka as i64).step_by(3) {
                    let pb = bias16(canonical(bval, ka) as i16, ka as u16) / q;
                    let biased = [pb];
                    let bcast = [u64::from(pb) * LANES];
                    let pf = ProbeFilter {
                        biased: &biased,
                        bcast: &bcast,
                    };
                    let mask = plane.swar_word_u8(pf, 0);
                    assert!(mask == 0 || mask == 0xFF, "lanes disagree: {mask:#x}");
                    let d = row_bucket.abs_diff(pb);
                    let bucket_close = d.min(kq - d) <= tq;
                    assert_eq!(
                        mask == 0xFF,
                        bucket_close,
                        "a={a} b={bval} t={t}: mask {mask:#x}"
                    );
                    if crate::conditions::cyclic_close(a, bval, t, ka) {
                        assert_eq!(mask, 0xFF, "a={a} b={bval} t={t}: over-rejected");
                    }
                }
            }
        }
    }
}
