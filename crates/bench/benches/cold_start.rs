//! **Cold start (ours)**: durable-server recovery and journaling costs.
//!
//! Two questions a production deployment asks of the persistence layer:
//!
//! * **How fast does a crashed server come back?** `recover/*` measures
//!   [`AuthenticationServer::recover`] — snapshot load (or full journal
//!   replay) plus sketch-index rebuild — against populations of
//!   10³–10⁵ enrolled users, for both the plain scan index and the
//!   sharded index. Snapshot recovery should beat journal replay (one
//!   framed record per user, no revocation interleaving) and both
//!   should scale linearly.
//! * **What does durability cost on the enroll path?** `enroll/*`
//!   compares a memory-only server against a journaled one
//!   (OS-buffered appends, the default) and an fsync-per-event one
//!   (power-failure durability) — the write-ahead overhead of
//!   [`FileStore`].
//!
//! Populations are synthesized with *real* Chebyshev sketches but a
//! shared DSA public key: recovery and journaling never run
//! per-record asymmetric crypto (the server stores opaque key bytes),
//! so reusing one keypair changes nothing about the measured paths
//! while making a 10⁵-record setup tractable.

//! `FE_BENCH_SMOKE=1` shrinks the sweep to a CI-sized smoke run and
//! records recovery/journaling rates in `BENCH_SMOKE.json` (see
//! `fe_bench::smoke`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fe_bench::{smoke, time_it, SynthPopulation};
use fe_core::{ScanIndex, ShardedIndex};
use fe_protocol::store::FileStore;
use fe_protocol::{AuthenticationServer, EnrollmentRecord, IndexConfig, SystemParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Duration;

const DIM: usize = 32;
/// 10³–10⁵ enrolled users: the acceptance-criterion sweep (full mode).
const POPULATIONS: [usize; 3] = [1_000, 10_000, 100_000];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fe-cold-start-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Synthesizes `n` enrollment records: real sketches, shared key bytes
/// (see [`SynthPopulation`]).
fn synthesize_records(params: &SystemParams, n: usize, rng: &mut StdRng) -> Vec<EnrollmentRecord> {
    SynthPopulation::build(params, n, DIM, rng).records
}

/// Populates a durable store at `dir`, optionally checkpointing so the
/// state lives in a snapshot instead of the journal tail.
fn populate(params: &SystemParams, dir: &PathBuf, records: &[EnrollmentRecord], snapshot: bool) {
    let mut server: AuthenticationServer =
        AuthenticationServer::recover(params.clone(), dir).unwrap();
    for r in records {
        server.enroll(r.clone()).unwrap();
    }
    if snapshot {
        server.checkpoint().unwrap();
    }
}

/// Snapshot-load + index-rebuild time versus population, journal replay
/// versus snapshot, scan versus sharded rebuild target.
fn bench_recover(c: &mut Criterion) {
    let smoke_run = smoke::smoke_mode();
    let populations: &[usize] = if smoke_run { &[2_000] } else { &POPULATIONS };
    let mut group = c.benchmark_group("cold_start");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 3 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 300 }));

    let mut smoke_metrics: Vec<(String, f64)> = Vec::new();
    let params = SystemParams::insecure_test_defaults();
    for &n in populations {
        let mut rng = StdRng::seed_from_u64(0xC01D + n as u64);
        let records = synthesize_records(&params, n, &mut rng);

        let journal_dir = temp_dir(&format!("journal-{n}"));
        populate(&params, &journal_dir, &records, false);
        let snap_dir = temp_dir(&format!("snap-{n}"));
        populate(&params, &snap_dir, &records, true);

        // Machine-readable smoke numbers: one timed recovery per path.
        let (_, journal_secs) = time_it(|| {
            let server: AuthenticationServer =
                AuthenticationServer::recover(params.clone(), &journal_dir).unwrap();
            assert_eq!(server.user_count(), n);
        });
        let (_, snap_secs) = time_it(|| {
            let server: AuthenticationServer =
                AuthenticationServer::recover(params.clone(), &snap_dir).unwrap();
            assert_eq!(server.user_count(), n);
        });
        smoke_metrics.push((format!("recover_journal_rps_{n}"), n as f64 / journal_secs));
        smoke_metrics.push((format!("recover_snapshot_rps_{n}"), n as f64 / snap_secs));

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("recover/journal", n), &n, |b, _| {
            b.iter(|| {
                let server: AuthenticationServer =
                    AuthenticationServer::recover(params.clone(), &journal_dir).unwrap();
                assert_eq!(server.user_count(), n);
                server
            })
        });
        group.bench_with_input(BenchmarkId::new("recover/snapshot", n), &n, |b, _| {
            b.iter(|| {
                let server: AuthenticationServer =
                    AuthenticationServer::recover(params.clone(), &snap_dir).unwrap();
                assert_eq!(server.user_count(), n);
                server
            })
        });
        // Rebuilding the sharded index from the same snapshot: the
        // recovery path the sharded engine of PR 1 takes.
        let sharded_params = params
            .clone()
            .with_index_config(IndexConfig::ShardedScan { shards: 4 });
        group.bench_with_input(
            BenchmarkId::new("recover/snapshot_sharded4", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let server = AuthenticationServer::<ShardedIndex<ScanIndex>>::recover(
                        sharded_params.clone(),
                        &snap_dir,
                    )
                    .unwrap();
                    assert_eq!(server.user_count(), n);
                    server
                })
            },
        );

        std::fs::remove_dir_all(&journal_dir).unwrap();
        std::fs::remove_dir_all(&snap_dir).unwrap();
    }
    group.finish();
    let named: Vec<(&str, f64)> = smoke_metrics
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    smoke::record("cold_start", &named);
}

/// Write-ahead journaling overhead on the enroll path: memory-only vs
/// OS-buffered journal vs fsync-per-event.
fn bench_enroll_overhead(c: &mut Criterion) {
    let smoke_run = smoke::smoke_mode();
    let mut group = c.benchmark_group("cold_start");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 2 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 300 }));

    let params = SystemParams::insecure_test_defaults();
    let mut rng = StdRng::seed_from_u64(0xE27011);
    // A pool of pre-built records so the measured loop is enroll-only.
    let pool = synthesize_records(&params, if smoke_run { 4_000 } else { 50_000 }, &mut rng);

    let configs: [(&str, bool, Option<bool>); 3] = [
        ("enroll/in_memory", false, None),
        ("enroll/journaled", true, Some(false)),
        ("enroll/journaled_fsync", true, Some(true)),
    ];
    for (name, durable, sync) in configs {
        let dir = temp_dir(name.replace('/', "-").as_str());
        let mut server = if durable {
            let mut store = FileStore::open(&dir, params.fingerprint()).unwrap();
            if let Some(sync) = sync {
                store.set_sync(sync);
            }
            let mut server = AuthenticationServer::new(params.clone());
            server.attach_store(Box::new(store)).unwrap();
            server
        } else {
            AuthenticationServer::new(params.clone())
        };
        let mut next = 0usize;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new(name, DIM), &DIM, |b, _| {
            b.iter(|| {
                let record = pool[next % pool.len()].clone();
                next += 1;
                // Unique id per iteration (ids in the pool repeat once
                // the pool wraps).
                let record = EnrollmentRecord {
                    id: format!("e-{next}"),
                    ..record
                };
                server.enroll(record).unwrap()
            })
        });
        std::mem::drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_recover, bench_enroll_overhead);
criterion_main!(benches);
