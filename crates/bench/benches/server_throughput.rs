//! **Server throughput (ours)**: identification service rate at scale,
//! sweeping enrolled population × shard count.
//!
//! Two layers are measured:
//!
//! * `lookup` / `batch` — the raw sketch-index layer on up to 10⁵
//!   enrolled sketches (paper parameters, worst-case probe): the plain
//!   early-abort scan vs [`ShardedIndex`] with 2/4/8 parallel shards,
//!   plus the batch path that resolves a whole probe queue per call.
//!   This is the acceptance benchmark for the sharded-index refactor:
//!   at 10⁵ records the scan is pure memory-bandwidth-bound compare
//!   work, so N shards approach an N-fold speedup on an idle machine.
//! * `identify_batch` — the full [`SharedServer`] protocol layer
//!   (challenge issue included): one lock acquisition per shard per
//!   batch instead of two exclusive acquisitions per device.
//!
//! Populations are built once per size from real Chebyshev sketches so
//! the early-abort profile matches production data.

//! `FE_BENCH_SMOKE=1` shrinks the sweep to a CI-sized smoke run and
//! records the headline numbers in `BENCH_SMOKE.json` (see
//! `fe_bench::smoke`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fe_bench::{smoke, time_it};
use fe_core::{
    ChebyshevSketch, EpochIndex, NumberLine, ScanIndex, SecureSketch, ShardedIndex, SketchIndex,
};
use fe_protocol::concurrent::SharedServer;
use fe_protocol::{BiometricDevice, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const DIM: usize = 64;
const T: u64 = 100;
const KA: u64 = 400;
/// ≥ 10⁵ enrolled sketches: the acceptance-criterion scale (full mode).
const INDEX_SIZES: [usize; 2] = [10_000, 100_000];
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
const BATCH: usize = 256;

fn build_population(users: usize, rng: &mut StdRng) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let line = NumberLine::new(100, 4, 500).unwrap();
    let scheme = ChebyshevSketch::new(line, T).unwrap();
    let mut sketches = Vec::with_capacity(users);
    let mut probes = Vec::with_capacity(users);
    for _ in 0..users {
        let x = scheme.line().random_vector(DIM, rng);
        sketches.push(scheme.sketch(&x, rng).unwrap());
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                scheme
                    .line()
                    .wrap(v + rng.gen_range(-(T as i64)..=T as i64))
            })
            .collect();
        probes.push(scheme.sketch(&noisy, rng).unwrap());
    }
    (sketches, probes)
}

/// Index layer: single worst-case lookup and a 256-probe batch, scan vs
/// sharded, over the population sweep.
fn bench_index_scaling(c: &mut Criterion) {
    let smoke_run = smoke::smoke_mode();
    let sizes: &[usize] = if smoke_run { &[20_000] } else { &INDEX_SIZES };
    let shard_counts: &[usize] = if smoke_run { &[2, 4] } else { &SHARD_COUNTS };
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 3 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 500 }));

    let mut smoke_metrics: Vec<(String, f64)> = Vec::new();
    for &users in sizes {
        let mut rng = StdRng::seed_from_u64(0x5CA1E + users as u64);
        let (sketches, probes) = build_population(users, &mut rng);
        // Worst case for the scan: the match is the last enrolled record.
        let worst_probe = probes.last().unwrap().clone();
        // A service queue: BATCH genuine probes spread over the
        // population.
        let batch: Vec<Vec<i64>> = (0..BATCH)
            .map(|i| probes[i * users / BATCH].clone())
            .collect();

        let mut scan = ScanIndex::new(T, KA);
        for s in &sketches {
            scan.insert(s);
        }
        // The smoke report's machine-readable numbers: one timed
        // worst-case scan and one timed 256-probe batch, independent of
        // criterion's output format.
        let (_, scan_secs) = time_it(|| scan.lookup(&worst_probe).expect("found"));
        let (_, batch_secs) = time_it(|| scan.lookup_batch(&batch));
        smoke_metrics.push((format!("scan_worst_lookup_us_{users}"), scan_secs * 1e6));
        smoke_metrics.push((
            format!("scan_batch256_rps_{users}"),
            BATCH as f64 / batch_secs,
        ));
        group.bench_with_input(BenchmarkId::new("lookup/scan", users), &users, |b, _| {
            b.iter(|| {
                scan.lookup(std::hint::black_box(&worst_probe))
                    .expect("found")
            })
        });
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("batch/scan", users), &users, |b, _| {
            b.iter(|| scan.lookup_batch(std::hint::black_box(&batch)))
        });

        for &shards in shard_counts {
            let mut sharded = ShardedIndex::scan(shards, T, KA);
            for s in &sketches {
                sharded.insert(s);
            }
            group.bench_with_input(
                BenchmarkId::new(format!("lookup/sharded{shards}"), users),
                &users,
                |b, _| {
                    b.iter(|| {
                        sharded
                            .lookup(std::hint::black_box(&worst_probe))
                            .expect("found")
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("batch/sharded{shards}"), users),
                &users,
                |b, _| b.iter(|| sharded.lookup_batch(std::hint::black_box(&batch))),
            );
        }
    }
    group.finish();
    let named: Vec<(&str, f64)> = smoke_metrics
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    smoke::record("server_throughput", &named);
}

/// Protocol layer: [`SharedServer::identify_batch`] over a queue of
/// concurrent devices, sweeping the server shard count. Smaller
/// population (each enrollment runs real DSA keygen).
fn bench_shared_server(c: &mut Criterion) {
    let smoke_run = smoke::smoke_mode();
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 3 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 500 }));

    // Each enrollment runs real DSA keygen, so the smoke run keeps the
    // population small.
    let users = if smoke_run { 96 } else { 512 };
    let queue = if smoke_run { 32usize } else { 64usize };
    for &shards in &[1usize, 4] {
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::<EpochIndex>::with_shards(params.clone(), shards);
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(0xBA7C + shards as u64);
        let mut probes = Vec::with_capacity(users);
        for u in 0..users {
            let bio = params.sketch().line().random_vector(DIM, &mut rng);
            server
                .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
                .unwrap();
            let reading: Vec<i64> = bio
                .iter()
                .map(|&x| x + rng.gen_range(-(T as i64)..=T as i64))
                .collect();
            probes.push(device.probe_sketch(&reading, &mut rng).unwrap());
        }
        let batch: Vec<Vec<i64>> = probes.into_iter().take(queue).collect();

        group.throughput(Throughput::Elements(queue as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("identify_batch/shards{shards}"), users),
            &users,
            |b, _| {
                b.iter(|| {
                    let results = server.identify_batch(std::hint::black_box(&batch), &mut rng);
                    // Cancel the issued sessions so the pending-challenge
                    // table stays bounded across iterations — otherwise
                    // later samples measure inserts into an ever-growing
                    // map instead of steady-state batch service.
                    for result in &results {
                        let chal = result.as_ref().expect("genuine probes match");
                        assert!(server.cancel_session(chal.session));
                    }
                    results
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_index_scaling, bench_shared_server);
criterion_main!(benches);
