//! The paper-faithful early-abort linear scan.

use super::{RecordId, SketchIndex};
use crate::conditions::sketches_match;

/// Early-abort linear scan (the paper's strategy).
#[derive(Debug, Clone)]
pub struct ScanIndex {
    t: u64,
    ka: u64,
    entries: Vec<Option<Vec<i64>>>,
    live: usize,
}

impl ScanIndex {
    /// Creates a scan index for sketches over a ring of circumference
    /// `ka` with threshold `t`.
    pub fn new(t: u64, ka: u64) -> Self {
        ScanIndex {
            t,
            ka,
            entries: Vec::new(),
            live: 0,
        }
    }

    /// Borrows an enrolled sketch by id (`None` for removed/unknown ids).
    pub fn sketch(&self, id: RecordId) -> Option<&[i64]> {
        self.entries.get(id)?.as_deref()
    }
}

impl SketchIndex for ScanIndex {
    fn insert(&mut self, sketch: Vec<i64>) -> RecordId {
        self.entries.push(Some(sketch));
        self.live += 1;
        self.entries.len() - 1
    }

    fn lookup(&self, probe: &[i64]) -> Option<RecordId> {
        self.entries.iter().position(|s| {
            s.as_ref().is_some_and(|s| {
                s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
            })
        })
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.as_ref().is_some_and(|s| {
                    s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
                })
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn remove(&mut self, id: RecordId) -> bool {
        match self.entries.get_mut(id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn slots(&self) -> usize {
        self.entries.len()
    }

    fn live_records(&self) -> Vec<(RecordId, Vec<i64>)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_ref().map(|s| (id, s.clone())))
            .collect()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.live = 0;
    }

    fn compact(&mut self) -> Vec<(RecordId, RecordId)> {
        // In-place: drain tombstones, keep live entries in order.
        let mut mapping = Vec::with_capacity(self.live);
        let mut next = 0usize;
        let entries = std::mem::take(&mut self.entries);
        self.entries = entries
            .into_iter()
            .enumerate()
            .filter_map(|(old, slot)| {
                slot.map(|s| {
                    mapping.push((old, next));
                    next += 1;
                    Some(s)
                })
            })
            .collect();
        mapping
    }
}
