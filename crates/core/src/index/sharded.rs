//! Horizontal sharding over any [`SketchIndex`] backend.

use super::epoch::{EpochRead, IndexReader};
use super::{BucketIndex, RecordId, ScanIndex, SketchIndex};
use rayon::prelude::*;

/// Below this many enrolled records, fan-out overhead beats the win from
/// parallel shard scans, so lookups run sequentially. Dispatching to the
/// persistent worker pool costs a few microseconds; a vectorized
/// early-abort scan over ~8k rows costs about the same, so anything
/// larger amortizes the fan-out.
const PARALLEL_THRESHOLD: usize = 8_192;

/// A sharded sketch index: records are partitioned round-robin across N
/// inner indexes and looked up on all shards in parallel.
///
/// # Id stability
///
/// Global [`RecordId`]s are assigned sequentially in insertion order and
/// are never renumbered or reused. The `g`-th inserted record lands on
/// shard `g % N` as that shard's local record `g / N`; because every
/// backend assigns local ids densely in insertion order and keeps them
/// stable across removals, the global↔local mapping is pure arithmetic —
/// no translation table, no synchronization on the read path.
///
/// # Semantics
///
/// `lookup`/`lookup_all`/`lookup_batch` return exactly the same results
/// as a single un-sharded backend over the same insertion sequence (the
/// equivalence is property-tested in `tests/properties.rs`): `lookup`
/// still means *lowest live global id*, i.e. earliest-enrolled-wins.
///
/// # Parallelism
///
/// Shard scans fan out on the persistent worker pool once the
/// population is large enough to amortize pool dispatch; small indexes
/// run sequentially. Shard tasks run *on* pool workers, so the
/// per-shard arenas' own block-sweep fan-out stands down inside them
/// (see `ParallelConfig`) — one level of parallelism, never
/// oversubscription. [`SketchIndex::lookup_batch`] hands the whole batch to
/// every shard's own batch path (for arena-backed shards, one
/// multi-query pass over the shard's column buffer serves every probe)
/// and folds per-shard first matches to the lowest global id — so a
/// server draining a queue of concurrent identification requests costs
/// one memory sweep per shard, not one per request.
#[derive(Debug, Clone)]
pub struct ShardedIndex<I> {
    shards: Vec<I>,
    /// Total inserts ever (monotone; includes since-removed records).
    inserted: usize,
    /// Sketch dimension, stamped by the first insert. Enforced here —
    /// not only by the per-shard storage — because a mixed-dimension
    /// insert routed to a still-empty shard would otherwise stamp that
    /// shard differently instead of failing loudly.
    dim: Option<usize>,
}

impl<I: SketchIndex> ShardedIndex<I> {
    /// Wraps pre-built, **empty** shard backends.
    ///
    /// # Panics
    /// Panics if `shards` is empty or any shard already holds records
    /// (which would break the arithmetic id mapping).
    pub fn new(shards: Vec<I>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(
            shards.iter().all(SketchIndex::is_empty),
            "shard backends must start empty"
        );
        ShardedIndex {
            shards,
            inserted: 0,
            dim: None,
        }
    }

    /// Builds `n` shards from a constructor closure (given the shard
    /// number).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> I) -> Self {
        Self::new((0..n).map(f).collect())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard backends (for diagnostics and benches).
    pub fn shards(&self) -> &[I] {
        &self.shards
    }

    fn locate(&self, id: RecordId) -> (usize, RecordId) {
        (id % self.shards.len(), id / self.shards.len())
    }

    fn to_global(&self, shard: usize, local: RecordId) -> RecordId {
        local * self.shards.len() + shard
    }

    fn use_parallel(&self) -> bool {
        self.shards.len() > 1 && self.inserted >= PARALLEL_THRESHOLD
    }

    /// `lookup` over the shards of `self`, sequential, lowest global id
    /// wins.
    fn lookup_sequential(&self, probe: &[i64]) -> Option<RecordId> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, shard)| shard.lookup(probe).map(|l| self.to_global(s, l)))
            .min()
    }
}

impl ShardedIndex<ScanIndex> {
    /// `n` early-abort scan shards over a ring of circumference `ka`
    /// with threshold `t` (default prefilter plane on every shard).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn scan(n: usize, t: u64, ka: u64) -> Self {
        Self::from_fn(n, |_| ScanIndex::new(t, ka))
    }

    /// Like [`ShardedIndex::scan`] with an explicit prefilter
    /// configuration for every shard's arena.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn scan_with_filter(n: usize, t: u64, ka: u64, filter: super::FilterConfig) -> Self {
        Self::from_fn(n, |_| ScanIndex::with_filter(t, ka, filter))
    }
}

impl ShardedIndex<BucketIndex> {
    /// `n` bucket-index shards (see [`BucketIndex::new`] for the
    /// quantization parameters).
    ///
    /// # Panics
    /// Panics if `n == 0` or `prefix_dims` is out of range.
    pub fn bucket(n: usize, t: u64, ka: u64, prefix_dims: usize) -> Self {
        Self::from_fn(n, |_| BucketIndex::new(t, ka, prefix_dims))
    }
}

impl<I: SketchIndex + Send + Sync> SketchIndex for ShardedIndex<I> {
    fn insert(&mut self, sketch: &[i64]) -> RecordId {
        let dim = *self.dim.get_or_insert(sketch.len());
        assert_eq!(
            sketch.len(),
            dim,
            "sketch dimension {} does not match the index's stamped dimension {dim}",
            sketch.len()
        );
        let global = self.inserted;
        let (shard, expected_local) = self.locate(global);
        let local = self.shards[shard].insert(sketch);
        // Release-enforced: a backend that reuses or skips local ids
        // would silently desynchronize the arithmetic global↔local
        // mapping — fail loudly instead (cost: one compare per insert).
        assert_eq!(
            local, expected_local,
            "shard backends must assign dense sequential local ids"
        );
        self.inserted += 1;
        global
    }

    fn lookup(&self, probe: &[i64]) -> Option<RecordId> {
        if !self.use_parallel() {
            return self.lookup_sequential(probe);
        }
        self.shards
            .par_iter()
            .enumerate()
            .filter_map(|(s, shard)| shard.lookup(probe).map(|l| self.to_global(s, l)))
            .min()
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId> {
        let mut all: Vec<RecordId> = if self.use_parallel() {
            self.shards
                .par_iter()
                .enumerate()
                .map(|(s, shard)| {
                    shard
                        .lookup_all(probe)
                        .into_iter()
                        .map(|l| self.to_global(s, l))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        } else {
            self.shards
                .iter()
                .enumerate()
                .flat_map(|(s, shard)| {
                    shard
                        .lookup_all(probe)
                        .into_iter()
                        .map(move |l| self.to_global(s, l))
                })
                .collect()
        };
        all.sort_unstable();
        all
    }

    fn lookup_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        if budget == 0 {
            return Vec::new();
        }
        // Each shard's bounded lookup returns *its* budget lowest local
        // matches; any global top-budget row is among some shard's
        // top-budget, so merging the mapped results ascending and
        // truncating is exact.
        let mut all: Vec<RecordId> = if self.use_parallel() {
            self.shards
                .par_iter()
                .enumerate()
                .map(|(s, shard)| {
                    shard
                        .lookup_at_most(probe, budget)
                        .into_iter()
                        .map(|l| self.to_global(s, l))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        } else {
            self.shards
                .iter()
                .enumerate()
                .flat_map(|(s, shard)| {
                    shard
                        .lookup_at_most(probe, budget)
                        .into_iter()
                        .map(move |l| self.to_global(s, l))
                })
                .collect()
        };
        all.sort_unstable();
        all.truncate(budget);
        all
    }

    fn lookup_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId> {
        if budget == 0 || subset.is_empty() {
            return Vec::new();
        }
        // Split the subset per shard (local ids), bound each shard's
        // masked lookup, and merge like lookup_at_most. Ids beyond the
        // insert horizon can't exist — drop them up front.
        let mut per_shard: Vec<Vec<RecordId>> = vec![Vec::new(); self.shards.len()];
        for &id in subset {
            if id < self.inserted {
                let (shard, local) = self.locate(id);
                per_shard[shard].push(local);
            }
        }
        let mut all: Vec<RecordId> = self
            .shards
            .iter()
            .enumerate()
            .flat_map(|(s, shard)| {
                let locals = &per_shard[s];
                let found = if locals.is_empty() {
                    Vec::new()
                } else {
                    shard.lookup_in_subset(probe, locals, budget)
                };
                found.into_iter().map(move |l| self.to_global(s, l))
            })
            .collect();
        all.sort_unstable();
        all.truncate(budget);
        all
    }

    fn lookup_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        // A one-element batch gets `lookup`'s shard-parallel path — a
        // single probe cannot share a scan with anything.
        if let [probe] = probes {
            return vec![self.lookup(probe)];
        }
        // Each shard resolves the whole batch through its backend's
        // batch path — for arena-backed shards that is ONE pass over the
        // shard's column buffer serving every probe (the multi-query
        // kernel), instead of one pass per probe. Per-shard first
        // matches then fold to the lowest global id per probe: the
        // local→global map is monotone within a shard, so the fold
        // reproduces exactly the single-index lowest-live-id semantics.
        let per_shard: Vec<Vec<Option<RecordId>>> = if self.use_parallel() {
            self.shards
                .par_iter()
                .map(|shard| shard.lookup_batch(probes))
                .collect()
        } else {
            self.shards
                .iter()
                .map(|shard| shard.lookup_batch(probes))
                .collect()
        };
        let mut out = vec![None; probes.len()];
        for (s, shard_results) in per_shard.into_iter().enumerate() {
            for (slot, local) in out.iter_mut().zip(shard_results) {
                if let Some(local) = local {
                    let global = self.to_global(s, local);
                    if slot.is_none_or(|cur| global < cur) {
                        *slot = Some(global);
                    }
                }
            }
        }
        out
    }

    fn remove(&mut self, id: RecordId) -> bool {
        if id >= self.inserted {
            return false;
        }
        let (shard, local) = self.locate(id);
        self.shards[shard].remove(local)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(SketchIndex::len).sum()
    }

    fn slots(&self) -> usize {
        self.shards.iter().map(SketchIndex::slots).sum()
    }

    fn dim(&self) -> Option<usize> {
        self.dim
    }

    fn sketch_dim_ok(&self, dim: usize) -> bool {
        // The sharded stamp plus whatever the backends require (e.g.
        // bucket shards also need `dim >= prefix_dims`); backends are
        // built identically, so asking one speaks for all.
        self.dim.is_none_or(|stamped| stamped == dim) && self.shards[0].sketch_dim_ok(dim)
    }

    fn copy_row_into(&self, id: RecordId, out: &mut Vec<i64>) -> bool {
        if id >= self.inserted {
            out.clear();
            return false;
        }
        let (shard, local) = self.locate(id);
        self.shards[shard].copy_row_into(local, out)
    }

    // `for_each_live`/`live_records` use the trait defaults: global ids
    // are dense (`0..inserted == 0..slots()`), so the default
    // `copy_row_into` walk already streams shards interleaved in
    // ascending *global* order — exactly the order compaction re-deals.

    fn reserve(&mut self, additional: usize, dim: usize) {
        // Stamp here too, like the per-shard arenas do, so `dim()` is
        // authoritative right after a pre-sized bulk load begins.
        let stamped = *self.dim.get_or_insert(dim);
        assert_eq!(dim, stamped, "reserve dimension must match the stamp");
        let per_shard = additional.div_ceil(self.shards.len());
        for shard in &mut self.shards {
            shard.reserve(per_shard, dim);
        }
    }

    fn heap_bytes(&self) -> usize {
        self.shards.iter().map(SketchIndex::heap_bytes).sum()
    }

    fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.inserted = 0;
    }
    // `compact` uses the default clear-and-reinsert: live records are
    // re-dealt round-robin in ascending global-id order, which rebalances
    // shards skewed by removals and restores the dense arithmetic
    // global↔local mapping (compacting shards independently could not —
    // unequal live counts per shard would break the `g % N` routing).

    fn flush(&mut self) {
        for shard in &mut self.shards {
            shard.flush();
        }
    }

    /// Sum of the shard generations: any shard renumbering (they only
    /// renumber together, through this index's own `compact`/`clear`)
    /// changes the sum, and each addend is monotone, so the sum is a
    /// valid monotone structural generation for the whole index.
    fn generation(&self) -> u64 {
        self.shards.iter().map(SketchIndex::generation).sum()
    }
}

/// Lock-free composite reader over the shards of a
/// [`ShardedIndex`] whose backend is epoch-published (see
/// [`EpochRead`]): each call fans the probe to every shard's own
/// reader and folds local ids through the same arithmetic
/// global↔local mapping the writer uses. Scans are sequential across
/// shards — each per-shard scan already fans out on the worker pool
/// for large populations, and nesting another layer of fan-out here
/// would oversubscribe it.
#[derive(Debug, Clone)]
pub struct ShardedReader<R> {
    shards: Vec<R>,
}

impl<R: IndexReader> IndexReader for ShardedReader<R> {
    fn generation(&self) -> u64 {
        self.shards.iter().map(R::generation).sum()
    }

    fn find_first(&self, probe: &[i64]) -> Option<RecordId> {
        let n = self.shards.len();
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, r)| r.find_first(probe).map(|l| l * n + s))
            .min()
    }

    fn find_first_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        let n = self.shards.len();
        let mut out = vec![None; probes.len()];
        for (s, r) in self.shards.iter().enumerate() {
            for (slot, local) in out.iter_mut().zip(r.find_first_batch(probes)) {
                if let Some(local) = local {
                    let global = local * n + s;
                    if slot.is_none_or(|cur| global < cur) {
                        *slot = Some(global);
                    }
                }
            }
        }
        out
    }

    fn find_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        if budget == 0 {
            return Vec::new();
        }
        // Exact for the same reason as `ShardedIndex::lookup_at_most`:
        // any global top-budget id is in some shard's local top-budget.
        let n = self.shards.len();
        let mut all: Vec<RecordId> = self
            .shards
            .iter()
            .enumerate()
            .flat_map(|(s, r)| {
                r.find_at_most(probe, budget)
                    .into_iter()
                    .map(move |l| l * n + s)
            })
            .collect();
        all.sort_unstable();
        all.truncate(budget);
        all
    }

    fn find_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId> {
        if budget == 0 || subset.is_empty() {
            return Vec::new();
        }
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<RecordId>> = vec![Vec::new(); n];
        for &id in subset {
            per_shard[id % n].push(id / n);
        }
        let mut all: Vec<RecordId> = self
            .shards
            .iter()
            .enumerate()
            .flat_map(|(s, r)| {
                let locals = &per_shard[s];
                let found = if locals.is_empty() {
                    Vec::new()
                } else {
                    r.find_in_subset(probe, locals, budget)
                };
                found.into_iter().map(move |l| l * n + s)
            })
            .collect();
        all.sort_unstable();
        all.truncate(budget);
        all
    }
}

impl<I: EpochRead + Send + Sync> EpochRead for ShardedIndex<I> {
    type Reader = ShardedReader<I::Reader>;

    fn reader(&self) -> ShardedReader<I::Reader> {
        ShardedReader {
            shards: self.shards.iter().map(EpochRead::reader).collect(),
        }
    }
}
