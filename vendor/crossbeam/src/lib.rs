//! Offline, API-compatible subset of `crossbeam`.
//!
//! Provides [`scope`] (over `std::thread::scope`), [`channel`] (over
//! `std::sync::mpsc`), and [`epoch`] — epoch-based reclamation with an
//! atomically swappable [`epoch::ArcCell`], the publication primitive
//! behind the lock-free identification read path.

// `deny` rather than `forbid`: the `epoch` module's raw-pointer ⇄ `Arc`
// round-trips are the one sanctioned `unsafe` exception (it scopes its
// own `allow` with the safety argument documented there). Everything
// else in the shim remains unsafe-free.
#![deny(unsafe_code)]

pub mod epoch;

use std::any::Any;

/// A handle for spawning scoped threads (mirrors
/// `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle
    /// (unused by most callers, hence commonly bound as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// threads are joined before `scope` returns.
///
/// # Errors
/// Upstream returns `Err` with the panic payloads of panicking child
/// threads. `std::thread::scope` instead resumes the first child panic
/// on the parent after joining all threads, so this shim only ever
/// returns `Ok` — callers' `.expect("no thread panicked")` still fails
/// the test (via the propagated panic) exactly when a child panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_from_scope_handle() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(42).unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(50)),
            Ok(42)
        );
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }
}
