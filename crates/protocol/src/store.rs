//! Durable enrollment storage: the append-only journal + snapshot
//! persistence behind crash-safe server recovery.
//!
//! The paper's server holds the whole enrolled population in memory; a
//! restart would silently lose every enrollment. Since helper data is
//! *public* under the paper's model (Sec. VI — an insider can read the
//! stored `(ID, pk, P)` records anyway), persisting it costs no security,
//! and classical fuzzy-extractor theory is explicitly built on storable
//! helper data. This module supplies the storage contract:
//!
//! * [`LogEvent`] — the two facts a server ever needs to remember:
//!   an enrollment (the full public record) or a revocation (the id).
//! * [`EnrollmentStore`] — the storage abstraction the servers journal
//!   through. Implementations must make [`EnrollmentStore::append`]
//!   durable *before* returning, because the server mutates its
//!   in-memory state only after the journal accepts the event
//!   (write-ahead ordering).
//! * [`MemoryStore`] — an in-process backend: no durability, but the
//!   same replay semantics. Useful for tests and for ephemeral
//!   deployments that still want the snapshot/compaction pass.
//! * [`FileStore`] — the durable backend: one directory holding an
//!   append-only journal (`journal.fel`) of CRC-framed events plus a
//!   periodically rewritten, atomically renamed snapshot
//!   (`snapshot.fes`) of the live population. Recovery loads the
//!   snapshot and replays the journal tail; a torn final journal write
//!   (the expected crash artifact) is detected by its frame CRC and
//!   truncated, while artifacts from a *different* parameter set are
//!   rejected by their [`Fingerprint`] before a single record is
//!   misinterpreted.
//!
//! See `DESIGN.md` ("Durability & recovery") for the format diagrams and
//! the reasoning behind each decision.
//!
//! ```rust
//! use fe_protocol::store::{EnrollmentStore, LogEvent, LogEventRef, MemoryStore};
//! use fe_protocol::{BiometricDevice, SystemParams};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), fe_protocol::ProtocolError> {
//! let params = SystemParams::insecure_test_defaults();
//! let device = BiometricDevice::new(params.clone());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//!
//! let mut store = MemoryStore::new();
//! let bio = params.sketch().line().random_vector(16, &mut rng);
//! let record = device.enroll("alice", &bio, &mut rng)?;
//! store.append(LogEventRef::Enroll(&record))?;
//! store.append(LogEventRef::Revoke("alice"))?;
//!
//! // Replay returns the events in order; applying them rebuilds the
//! // population (here: alice enrolled, then revoked → empty).
//! let events = store.load()?;
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0], LogEvent::Enroll(record));
//! # Ok(())
//! # }
//! ```

use crate::messages::{EnrollmentRecord, UserId};
use crate::ProtocolError;
use fe_core::codec::{self, ArtifactKind, CodecError, Fingerprint, Reader, Writer};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One durable fact about the enrolled population.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEvent {
    /// A user enrolled with this (public) record.
    Enroll(EnrollmentRecord),
    /// The user with this id was revoked.
    Revoke(UserId),
    /// A uniqueness-checked enrollment was *refused* because the
    /// presented sketch already matched the enrolled user `matched`
    /// (see [`AuthenticationServer::enroll_unique`](crate::AuthenticationServer::enroll_unique)).
    /// Pure audit record: replay ignores it, and compaction drops it
    /// with the rest of the journal history.
    EnrollRejected {
        /// The id the refused enrollment carried.
        id: UserId,
        /// The already-enrolled user whose record matched.
        matched: UserId,
    },
}

impl LogEvent {
    /// A borrowed view of this event (see [`LogEventRef`]).
    pub fn as_ref(&self) -> LogEventRef<'_> {
        match self {
            LogEvent::Enroll(record) => LogEventRef::Enroll(record),
            LogEvent::Revoke(id) => LogEventRef::Revoke(id),
            LogEvent::EnrollRejected { id, matched } => LogEventRef::EnrollRejected { id, matched },
        }
    }
}

/// A borrowed [`LogEvent`]: what [`EnrollmentStore::append`] takes, so
/// the write-ahead hot path (`enroll` journals *every* record) never
/// clones sketch vectors just to serialize them.
#[derive(Debug, Clone, Copy)]
pub enum LogEventRef<'a> {
    /// A user enrolled with this (public) record.
    Enroll(&'a EnrollmentRecord),
    /// The user with this id was revoked.
    Revoke(&'a str),
    /// A uniqueness-checked enrollment of `id` was refused because the
    /// sketch matched the enrolled user `matched` (audit record).
    EnrollRejected {
        /// The id the refused enrollment carried.
        id: &'a str,
        /// The already-enrolled user whose record matched.
        matched: &'a str,
    },
}

impl LogEventRef<'_> {
    /// Clones into an owned [`LogEvent`] (what in-memory backends
    /// store).
    pub fn to_event(self) -> LogEvent {
        match self {
            LogEventRef::Enroll(record) => LogEvent::Enroll(record.clone()),
            LogEventRef::Revoke(id) => LogEvent::Revoke(id.to_string()),
            LogEventRef::EnrollRejected { id, matched } => LogEvent::EnrollRejected {
                id: id.to_string(),
                matched: matched.to_string(),
            },
        }
    }
}

const EVENT_ENROLL: u8 = 1;
const EVENT_REVOKE: u8 = 2;
const EVENT_ENROLL_REJECTED: u8 = 3;

/// One snapshot row, borrowed from the server's live record table: what
/// [`EnrollmentStore::compact`] streams instead of taking an owned
/// `Vec<EnrollmentRecord>` of the whole population. The id and helper
/// data (which holds the sketch — the bulk of a record) stay borrowed;
/// only the small serialized public key is materialized per row.
#[derive(Debug)]
pub struct SnapshotRow<'a> {
    /// The enrolled user's identity.
    pub id: &'a str,
    /// Serialized DSA verification key bytes.
    pub public_key: Vec<u8>,
    /// Borrowed public helper data `P = (s, h, r)`.
    pub helper: &'a crate::messages::WireHelper,
}

impl SnapshotRow<'_> {
    /// Borrows a row from an owned record.
    pub fn of(record: &EnrollmentRecord) -> SnapshotRow<'_> {
        SnapshotRow {
            id: &record.id,
            public_key: record.public_key.clone(),
            helper: &record.helper,
        }
    }

    /// Clones into an owned wire-shaped record (what in-memory
    /// snapshot backends store).
    pub fn to_record(&self) -> EnrollmentRecord {
        EnrollmentRecord {
            id: self.id.to_string(),
            public_key: self.public_key.clone(),
            helper: self.helper.clone(),
        }
    }
}

/// Encodes an enrollment record's fields (no artifact header — callers
/// embed this in framed journal entries or snapshot rows).
pub fn put_record(w: &mut Writer, record: &EnrollmentRecord) {
    w.put_str(&record.id);
    w.put_bytes(&record.public_key);
    codec::put_helper(w, &record.helper);
}

/// [`put_record`] for a borrowed snapshot row (identical byte layout).
pub fn put_row(w: &mut Writer, row: &SnapshotRow<'_>) {
    w.put_str(row.id);
    w.put_bytes(&row.public_key);
    codec::put_helper(w, row.helper);
}

/// Decodes a record written by [`put_record`].
///
/// # Errors
/// [`CodecError`] on truncation or malformed fields.
pub fn get_record(r: &mut Reader<'_>) -> Result<EnrollmentRecord, CodecError> {
    let id = r.get_str()?;
    let public_key = r.get_bytes()?;
    let helper = codec::get_helper(r)?;
    Ok(EnrollmentRecord {
        id,
        public_key,
        helper,
    })
}

/// Encodes one journal event as a frame payload.
fn encode_event(event: LogEventRef<'_>) -> Vec<u8> {
    let mut w = Writer::new();
    match event {
        LogEventRef::Enroll(record) => {
            w.put_u8(EVENT_ENROLL);
            put_record(&mut w, record);
        }
        LogEventRef::Revoke(id) => {
            w.put_u8(EVENT_REVOKE);
            w.put_str(id);
        }
        LogEventRef::EnrollRejected { id, matched } => {
            w.put_u8(EVENT_ENROLL_REJECTED);
            w.put_str(id);
            w.put_str(matched);
        }
    }
    w.into_bytes()
}

/// Decodes one journal-frame payload.
fn decode_event(payload: &[u8]) -> Result<LogEvent, CodecError> {
    let mut r = Reader::new(payload);
    let event = match r.get_u8()? {
        EVENT_ENROLL => LogEvent::Enroll(get_record(&mut r)?),
        EVENT_REVOKE => LogEvent::Revoke(r.get_str()?),
        EVENT_ENROLL_REJECTED => LogEvent::EnrollRejected {
            id: r.get_str()?,
            matched: r.get_str()?,
        },
        _ => return Err(CodecError::Malformed("unknown event tag")),
    };
    r.expect_end()?;
    Ok(event)
}

/// Storage abstraction the servers journal enrollment state through.
///
/// The contract, in the order a durable server exercises it:
///
/// 1. [`EnrollmentStore::append`] persists one event. The server calls
///    this *before* touching its in-memory state (write-ahead), so an
///    event that fails to persist never exists only in RAM.
/// 2. [`EnrollmentStore::load`] returns every surviving event in append
///    order — snapshot records first (as `Enroll` events), then the
///    journal tail. Replaying them into an empty server reproduces the
///    pre-crash population.
/// 3. [`EnrollmentStore::compact`] replaces all history with a snapshot
///    of the given live records and empties the journal, bounding both
///    storage and future recovery time.
pub trait EnrollmentStore: std::fmt::Debug + Send + Sync {
    /// Durably appends one event (borrowed — implementations clone only
    /// if they keep events in memory).
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] when the event could not be persisted;
    /// the caller must then leave its in-memory state unchanged.
    fn append(&mut self, event: LogEventRef<'_>) -> Result<(), ProtocolError>;

    /// Replays all persisted state as an ordered event sequence.
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] / [`ProtocolError::Codec`] on
    /// unreadable or foreign artifacts (a torn journal *tail* is not an
    /// error — implementations truncate it and return the good prefix).
    fn load(&mut self) -> Result<Vec<LogEvent>, ProtocolError>;

    /// Atomically replaces history with a snapshot of exactly `count`
    /// live records, streamed one [`SnapshotRow`] at a time, and
    /// truncates the journal. Streaming is the point: a checkpoint of
    /// 10⁶ users must not clone 10⁶ sketches into an intermediate
    /// vector before the first byte hits disk.
    ///
    /// Implementations may rely on `rows` yielding exactly `count`
    /// items; the server derives both from the same record table.
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] when the snapshot could not be
    /// written; the previous snapshot/journal remain in effect.
    fn compact<'a>(
        &mut self,
        count: usize,
        rows: &mut (dyn Iterator<Item = SnapshotRow<'a>> + 'a),
    ) -> Result<(), ProtocolError>;

    /// [`EnrollmentStore::compact`] over an owned record slice — the
    /// convenience form tests and small deployments use.
    ///
    /// # Errors
    /// As [`EnrollmentStore::compact`].
    fn compact_records(&mut self, live: &[EnrollmentRecord]) -> Result<(), ProtocolError> {
        self.compact(live.len(), &mut live.iter().map(SnapshotRow::of))
    }

    /// Events appended since the last snapshot (the journal tail length):
    /// the replay work a recovery would have to do beyond snapshot load,
    /// and the usual trigger for scheduling [`EnrollmentStore::compact`].
    fn journal_len(&self) -> usize;

    /// Saves an opaque index-cache sidecar bound to the *current*
    /// snapshot — the epoch index's sealed columnar segments, exported
    /// verbatim so recovery can map them back in instead of re-inserting
    /// every snapshot row (see `fe_core::index::epoch`).
    ///
    /// The cache is purely an accelerator: implementations that ignore
    /// it (the default) lose nothing but recovery speed. Callers must
    /// invoke this *after* a successful [`EnrollmentStore::compact`] so
    /// the sidecar describes the snapshot it rides along with.
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] when the sidecar could not be
    /// persisted; the snapshot and journal remain valid without it.
    fn save_index_cache(&mut self, blob: &[u8]) -> Result<(), ProtocolError> {
        let _ = blob;
        Ok(())
    }

    /// Loads the index-cache sidecar, if one exists *and* it provably
    /// belongs to the current snapshot. Implementations must return
    /// `None` (never an error) on any doubt — a missing, stale, foreign
    /// or corrupt cache simply means recovery replays the snapshot the
    /// slow way.
    fn load_index_cache(&mut self) -> Option<Vec<u8>> {
        None
    }
}

/// In-memory [`EnrollmentStore`]: replay/compaction semantics without
/// durability.
#[derive(Debug, Default, Clone)]
pub struct MemoryStore {
    snapshot: Vec<EnrollmentRecord>,
    journal: Vec<LogEvent>,
    index_cache: Option<Vec<u8>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl EnrollmentStore for MemoryStore {
    fn append(&mut self, event: LogEventRef<'_>) -> Result<(), ProtocolError> {
        self.journal.push(event.to_event());
        Ok(())
    }

    fn load(&mut self) -> Result<Vec<LogEvent>, ProtocolError> {
        let mut events: Vec<LogEvent> = self
            .snapshot
            .iter()
            .cloned()
            .map(LogEvent::Enroll)
            .collect();
        events.extend(self.journal.iter().cloned());
        Ok(events)
    }

    fn compact<'a>(
        &mut self,
        count: usize,
        rows: &mut (dyn Iterator<Item = SnapshotRow<'a>> + 'a),
    ) -> Result<(), ProtocolError> {
        let mut snapshot = Vec::with_capacity(count);
        snapshot.extend(rows.map(|row| row.to_record()));
        self.snapshot = snapshot;
        self.journal.clear();
        // Any previously saved cache described the *old* snapshot.
        self.index_cache = None;
        Ok(())
    }

    fn journal_len(&self) -> usize {
        self.journal.len()
    }

    fn save_index_cache(&mut self, blob: &[u8]) -> Result<(), ProtocolError> {
        self.index_cache = Some(blob.to_vec());
        Ok(())
    }

    fn load_index_cache(&mut self) -> Option<Vec<u8>> {
        self.index_cache.clone()
    }
}

/// Size of the artifact header every durable file starts with
/// (magic ‖ version ‖ kind ‖ fingerprint).
const HEADER_LEN: u64 = 4 + 2 + 1 + 8;

fn io_err(context: &str, e: std::io::Error) -> ProtocolError {
    ProtocolError::Storage(format!("{context}: {e}"))
}

/// File-backed [`EnrollmentStore`]: append-only journal + compacted
/// snapshots in one directory.
///
/// # Layout
///
/// * `journal.fel` — artifact header (kind [`ArtifactKind::Journal`]),
///   then zero or more CRC-framed [`LogEvent`]s. Appended on every
///   enroll/revoke; never rewritten except by compaction.
/// * `snapshot.fes` — artifact header (kind [`ArtifactKind::Snapshot`]),
///   a `u64` record count, then that many CRC-framed records. Written to
///   `snapshot.fes.tmp` first, fsynced, and renamed into place — readers
///   only ever observe a complete snapshot.
///
/// # Crash behavior
///
/// A crash mid-append leaves a torn final frame: a short frame or a CRC
/// mismatch at the end of the file. [`FileStore::open`] detects it and
/// truncates the journal back to the last complete frame immediately —
/// *before* handing out an append handle — so the surviving events are
/// exactly those whose `append` had returned `Ok`, and a fresh append
/// can never land behind torn bytes. A CRC failure with intact frames
/// *behind* it is damage at rest, not a crash: `open` refuses and
/// leaves the file untouched for salvage. A crash mid-compaction leaves
/// at worst a stale `.tmp` file, which the next compaction overwrites;
/// the rename is the commit point.
///
/// # Single-writer lock
///
/// The store directory is guarded by a pid lock file (`lock.pid`):
/// a second process (or a second `FileStore` in the same process)
/// opening the same directory fails loudly instead of interleaving
/// appends into one journal. A lock left behind by a killed process is
/// detected (the pid no longer exists) and stolen; the lock is removed
/// on drop.
///
/// # Durability levels
///
/// By default appends are pushed to the OS (`write` + flush): they
/// survive *process* death — the kill-mid-log scenario — but not kernel
/// panic or power loss. [`FileStore::set_sync`] upgrades every append to
/// an `fsync`, trading enroll throughput (quantified in the `cold_start`
/// bench) for full power-failure durability.
pub struct FileStore {
    dir: PathBuf,
    fingerprint: Fingerprint,
    journal: File,
    journal_events: usize,
    sync_every_append: bool,
    torn_bytes_discarded: u64,
    lock_path: PathBuf,
    /// Journal events decoded by the `open`-time scan, consumed by the
    /// first [`FileStore::load`] so recovery reads and checksums the
    /// journal exactly once. Invalidated by [`FileStore::append`].
    scanned: Option<Vec<LogEvent>>,
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Only remove the lock if it is still ours (a dead-pid steal
        // could have legitimately re-claimed it in the meantime).
        let ours = fs::read_to_string(&self.lock_path)
            .ok()
            .as_deref()
            .and_then(parse_lock)
            .is_some_and(|(pid, _)| pid == std::process::id());
        if ours {
            let _ = fs::remove_file(&self.lock_path);
        }
    }
}

/// Start time of a process (clock ticks since boot — field 22 of
/// `/proc/<pid>/stat`), `None` when the pid does not exist or `/proc`
/// is unavailable. Paired with the pid in the lock file, it makes a
/// *recycled* pid (same number, different process, e.g. after a
/// reboot) distinguishable from the original lock holder.
fn process_start_time(pid: u32) -> Option<u64> {
    let stat = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // The comm field (2) may itself contain spaces and parentheses;
    // the numeric fields resume after the LAST ')'.
    let rest = stat.rsplit_once(')')?.1;
    // rest = " <state(3)> <field4> …": starttime is field 22 overall,
    // i.e. the 20th whitespace token after the ')'.
    rest.split_whitespace().nth(19)?.parse().ok()
}

/// Parses a lock file: `<pid> [<starttime>]`.
fn parse_lock(contents: &str) -> Option<(u32, u64)> {
    let mut tokens = contents.split_whitespace();
    let pid = tokens.next()?.parse().ok()?;
    let start = tokens.next().and_then(|t| t.parse().ok()).unwrap_or(0);
    Some((pid, start))
}

/// Claims the store's lock file (`<pid> <starttime>`), stealing locks
/// whose holder no longer exists (crashed process) or whose pid now
/// names a *different* process (pid recycled after a reboot).
///
/// The claim is an atomic `hard_link` from a fully-written temp file,
/// so `lock.pid` is never observable half-written — a garbage lock can
/// only mean filesystem damage, not an in-flight claim. Stealing a
/// stale lock goes through an atomic `rename`: of two racing stealers
/// only one rename succeeds; the loser just retries and finds the
/// winner's fresh lock. Best-effort advisory locking: it needs a
/// `/proc` filesystem to judge liveness; without one, an existing lock
/// is always treated as held. (An `flock` would be kernel-released and
/// immune to all of this, but needs `libc`, which this offline,
/// `forbid(unsafe_code)` workspace does not have.)
fn acquire_dir_lock(dir: &Path) -> Result<PathBuf, ProtocolError> {
    let lock_path = dir.join("lock.pid");
    let my_pid = std::process::id();
    let my_start = process_start_time(my_pid).unwrap_or(0);
    let tmp = dir.join(format!("lock.pid.tmp.{my_pid}"));
    fs::write(&tmp, format!("{my_pid} {my_start}\n")).map_err(|e| io_err("stage store lock", e))?;
    let result = (|| {
        for _ in 0..16 {
            match fs::hard_link(&tmp, &lock_path) {
                Ok(()) => return Ok(lock_path.clone()),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&lock_path)
                        .ok()
                        .as_deref()
                        .and_then(parse_lock);
                    let stale = match holder {
                        // Claims are atomic, so an unreadable lock is
                        // damage, never a claim in flight.
                        None => true,
                        // Another handle in this very process.
                        Some((pid, _)) if pid == my_pid => false,
                        // No /proc: cannot judge liveness → treat held.
                        _ if !Path::new("/proc").is_dir() => false,
                        Some((pid, start)) => match process_start_time(pid) {
                            // Holder pid is gone: crashed.
                            None => true,
                            // Pid alive but started at a different
                            // time: the number was recycled — the real
                            // holder is long dead.
                            Some(live) => start != 0 && live != start,
                        },
                    };
                    if stale {
                        let grave = dir.join(format!("lock.pid.stale.{my_pid}"));
                        if fs::rename(&lock_path, &grave).is_ok() {
                            let _ = fs::remove_file(&grave);
                        }
                        continue; // retry the claim
                    }
                    return Err(ProtocolError::Storage(format!(
                        "store at {} is already open (lock {} held by pid {})",
                        dir.display(),
                        lock_path.display(),
                        holder.map_or_else(|| "?".into(), |(p, _)| p.to_string()),
                    )));
                }
                Err(e) => return Err(io_err("claim store lock", e)),
            }
        }
        Err(ProtocolError::Storage(format!(
            "could not claim store lock at {} (contended)",
            lock_path.display()
        )))
    })();
    let _ = fs::remove_file(&tmp);
    result
}

/// Result of one journal scan-and-repair pass.
struct JournalScan {
    events: Vec<LogEvent>,
    torn_bytes: u64,
}

/// Reads the journal, validates its header, decodes every frame, and
/// classifies a bad region: a frame running past end-of-file — or a CRC
/// failure on the *final* frame — is the torn write a crash mid-append
/// leaves (appends are strictly sequential, so a partial frame is
/// always last) and is truncated in place; a CRC failure with intact
/// data *behind* it is damage at rest, which errors with the file
/// preserved for salvage (truncating would destroy acknowledged
/// events). Shared by `open` (so an append handle never points behind
/// torn bytes) and `load` (when appends have invalidated the cached
/// scan).
fn scan_and_repair_journal(
    path: &Path,
    fingerprint: &Fingerprint,
) -> Result<JournalScan, ProtocolError> {
    let bytes = fs::read(path).map_err(|e| io_err("read journal", e))?;
    let mut r = Reader::new(&bytes);
    r.read_header(ArtifactKind::Journal, fingerprint)?;
    let mut events = Vec::new();
    let good_end = loop {
        if r.is_empty() {
            break bytes.len();
        }
        let frame_start = r.position();
        match r.get_framed() {
            Ok(payload) => match decode_event(payload) {
                Ok(event) => events.push(event),
                // A frame with a valid CRC but undecodable contents is
                // corruption, not a torn write.
                Err(e) => return Err(ProtocolError::Codec(e)),
            },
            Err(CodecError::Truncated) => break frame_start,
            Err(CodecError::BadChecksum) if r.is_empty() => break frame_start,
            Err(e) => return Err(ProtocolError::Codec(e)),
        }
    };
    let torn_bytes = (bytes.len() - good_end) as u64;
    if torn_bytes > 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open journal for truncation", e))?;
        file.set_len(good_end as u64)
            .map_err(|e| io_err("truncate torn journal tail", e))?;
    }
    Ok(JournalScan { events, torn_bytes })
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("dir", &self.dir)
            .field("fingerprint", &self.fingerprint.to_string())
            .field("journal_events", &self.journal_events)
            .field("sync_every_append", &self.sync_every_append)
            .finish()
    }
}

impl FileStore {
    /// Opens (creating if needed) the store directory for the given
    /// parameter fingerprint.
    ///
    /// An existing journal's header is validated immediately: a foreign
    /// file or a journal written under different system parameters is
    /// rejected here, before any replay.
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] on I/O failure;
    /// [`ProtocolError::Codec`] when existing artifacts belong to a
    /// different format or parameter set.
    pub fn open(
        dir: impl AsRef<Path>,
        fingerprint: Fingerprint,
    ) -> Result<FileStore, ProtocolError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create store dir", e))?;
        let lock_path = acquire_dir_lock(&dir)?;
        // From here on, errors must release the claimed lock.
        match Self::open_locked(dir, fingerprint, lock_path.clone()) {
            Ok(store) => Ok(store),
            Err(e) => {
                let _ = fs::remove_file(&lock_path);
                Err(e)
            }
        }
    }

    fn open_locked(
        dir: PathBuf,
        fingerprint: Fingerprint,
        lock_path: PathBuf,
    ) -> Result<FileStore, ProtocolError> {
        let journal_path = dir.join("journal.fel");

        let mut fresh_header = Writer::new();
        fresh_header.put_header(ArtifactKind::Journal, &fingerprint);

        let existing_len = match fs::metadata(&journal_path) {
            Ok(meta) => Some(meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err("stat journal", e)),
        };
        let scan = match existing_len {
            // Scan (and torn-tail-repair) the journal now, *before* the
            // append handle exists — a fresh append must never land
            // behind torn bytes — and keep the decoded events so the
            // first `load` does not re-read the file.
            Some(len) if len >= HEADER_LEN => scan_and_repair_journal(&journal_path, &fingerprint)?,
            Some(_) => {
                // Torn during creation (crash before the header landed):
                // no frame can have been acknowledged, so rewriting the
                // header loses nothing.
                fs::write(&journal_path, fresh_header.as_slice())
                    .map_err(|e| io_err("rewrite torn journal header", e))?;
                JournalScan {
                    events: Vec::new(),
                    torn_bytes: 0,
                }
            }
            None => {
                fs::write(&journal_path, fresh_header.as_slice())
                    .map_err(|e| io_err("create journal", e))?;
                JournalScan {
                    events: Vec::new(),
                    torn_bytes: 0,
                }
            }
        };

        let journal = OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .map_err(|e| io_err("open journal for append", e))?;
        Ok(FileStore {
            dir,
            fingerprint,
            journal,
            journal_events: scan.events.len(),
            sync_every_append: false,
            torn_bytes_discarded: scan.torn_bytes,
            lock_path,
            scanned: Some(scan.events),
        })
    }

    /// Upgrades (or downgrades) appends to fsync-per-event durability.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync_every_append = sync;
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes discarded as torn journal tails since this store was
    /// opened — including the repair [`FileStore::open`] itself performs
    /// (0 when the journal has been clean throughout).
    pub fn torn_bytes_discarded(&self) -> u64 {
        self.torn_bytes_discarded
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.fel")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.fes")
    }

    fn segments_path(&self) -> PathBuf {
        self.dir.join("segments.fsg")
    }

    fn load_snapshot(&self) -> Result<Vec<LogEvent>, ProtocolError> {
        let bytes = match fs::read(self.snapshot_path()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err("read snapshot", e)),
        };
        let mut r = Reader::new(&bytes);
        r.read_header(ArtifactKind::Snapshot, &self.fingerprint)?;
        let count = r.get_u64()?;
        // The count field is not self-validating; cap the preallocation
        // by what the remaining bytes could possibly hold (8 bytes of
        // frame header per record minimum) so a corrupt count cannot
        // trigger a huge allocation — the framed reads below still fail
        // cleanly on any mismatch.
        let plausible = (r.remaining() / 8).min(count as usize);
        let mut events = Vec::with_capacity(plausible);
        for _ in 0..count {
            // Snapshots are written atomically (tmp + rename), so any
            // damage here is corruption, not a torn write → hard error.
            let payload = r.get_framed()?;
            events.push(LogEvent::Enroll(
                get_record(&mut Reader::new(payload)).map_err(ProtocolError::Codec)?,
            ));
        }
        r.expect_end().map_err(ProtocolError::Codec)?;
        Ok(events)
    }

    /// The journal tail: the `open`-time scan if still valid, otherwise
    /// a fresh scan-and-repair of the file.
    fn journal_tail(&mut self) -> Result<Vec<LogEvent>, ProtocolError> {
        if let Some(events) = self.scanned.take() {
            return Ok(events);
        }
        let scan = scan_and_repair_journal(&self.journal_path(), &self.fingerprint)?;
        self.torn_bytes_discarded += scan.torn_bytes;
        self.journal_events = scan.events.len();
        Ok(scan.events)
    }
}

impl EnrollmentStore for FileStore {
    fn append(&mut self, event: LogEventRef<'_>) -> Result<(), ProtocolError> {
        let mut w = Writer::new();
        w.put_framed(&encode_event(event));
        self.journal
            .write_all(w.as_slice())
            .map_err(|e| io_err("append journal event", e))?;
        self.journal
            .flush()
            .map_err(|e| io_err("flush journal", e))?;
        if self.sync_every_append {
            self.journal
                .sync_data()
                .map_err(|e| io_err("sync journal", e))?;
        }
        self.journal_events += 1;
        // The open-time scan no longer reflects the file.
        self.scanned = None;
        Ok(())
    }

    fn load(&mut self) -> Result<Vec<LogEvent>, ProtocolError> {
        let mut events = self.load_snapshot()?;
        events.extend(self.journal_tail()?);
        Ok(events)
    }

    fn compact<'a>(
        &mut self,
        count: usize,
        rows: &mut (dyn Iterator<Item = SnapshotRow<'a>> + 'a),
    ) -> Result<(), ProtocolError> {
        // 1. Stream the snapshot to a temporary file, one framed row at
        //    a time — the whole population is never materialized in
        //    memory (the server side borrows rows straight out of its
        //    record table).
        let tmp = self.dir.join("snapshot.fes.tmp");
        let file = File::create(&tmp).map_err(|e| io_err("create snapshot tmp", e))?;
        let mut out = std::io::BufWriter::new(file);
        let mut header = Writer::new();
        header.put_header(ArtifactKind::Snapshot, &self.fingerprint);
        header.put_u64(count as u64);
        out.write_all(header.as_slice())
            .map_err(|e| io_err("write snapshot header", e))?;
        let mut written = 0usize;
        // One payload + one frame buffer, reused across every row: a
        // 10⁶-user snapshot performs O(1) writer allocations, not 2·10⁶.
        let mut payload = Writer::new();
        let mut frame = Writer::new();
        for row in rows {
            payload.clear();
            put_row(&mut payload, &row);
            frame.clear();
            frame.put_framed(payload.as_slice());
            out.write_all(frame.as_slice())
                .map_err(|e| io_err("write snapshot row", e))?;
            written += 1;
        }
        // The count header was written first; a lying iterator would
        // produce a snapshot that fails its own load.
        if written != count {
            return Err(ProtocolError::Storage(format!(
                "snapshot row stream produced {written} rows, caller promised {count}"
            )));
        }
        let file = out
            .into_inner()
            .map_err(|e| io_err("flush snapshot", e.into()))?;
        file.sync_all().map_err(|e| io_err("sync snapshot", e))?;
        drop(file);
        // 2. …atomically commit it. The rename itself must be made
        // durable (fsync of the *directory*) before the journal is
        // reset: otherwise power loss could persist the emptied journal
        // while the snapshot's directory entry evaporates, losing every
        // event the snapshot was supposed to cover.
        fs::rename(&tmp, self.snapshot_path()).map_err(|e| io_err("commit snapshot", e))?;
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("sync store dir", e))?;
        // Any index-cache sidecar on disk described the snapshot just
        // replaced. Its CRC binding would reject it on load anyway
        // (belt), but remove it eagerly (braces) — best-effort, because
        // failing a durable compaction over a cosmetic delete would be
        // backwards.
        let _ = fs::remove_file(self.segments_path());
        // 3. Only now reset the journal to its bare header, and push
        // the truncation to stable storage too. (A crash between 2 and
        // 3 replays journal events already covered by the snapshot;
        // replay tolerates that by construction — see
        // `AuthenticationServer::recover`.)
        let mut header = Writer::new();
        header.put_header(ArtifactKind::Journal, &self.fingerprint);
        let mut journal =
            File::create(self.journal_path()).map_err(|e| io_err("reset journal", e))?;
        journal
            .write_all(header.as_slice())
            .map_err(|e| io_err("write journal header", e))?;
        journal
            .sync_all()
            .map_err(|e| io_err("sync reset journal", e))?;
        drop(journal);
        self.journal = OpenOptions::new()
            .append(true)
            .open(self.journal_path())
            .map_err(|e| io_err("reopen journal", e))?;
        self.journal_events = 0;
        self.scanned = Some(Vec::new());
        Ok(())
    }

    fn journal_len(&self) -> usize {
        self.journal_events
    }

    fn save_index_cache(&mut self, blob: &[u8]) -> Result<(), ProtocolError> {
        // Bind the sidecar to the exact snapshot bytes it accelerates:
        // a CRC of the committed snapshot file travels inside the
        // sidecar header, so `load_index_cache` can prove the pairing
        // even after a crash that lands between a future compaction's
        // snapshot rename and its cache delete.
        let snapshot = fs::read(self.snapshot_path())
            .map_err(|e| io_err("read snapshot for cache binding", e))?;
        let mut w = Writer::new();
        w.put_header(ArtifactKind::Segment, &self.fingerprint);
        w.put_u32(codec::crc32(&snapshot));
        w.put_framed(blob);
        let tmp = self.dir.join("segments.fsg.tmp");
        fs::write(&tmp, w.as_slice()).map_err(|e| io_err("write segment cache tmp", e))?;
        fs::rename(&tmp, self.segments_path()).map_err(|e| io_err("commit segment cache", e))?;
        Ok(())
    }

    fn load_index_cache(&mut self) -> Option<Vec<u8>> {
        // Strictly best-effort: *any* irregularity — missing file,
        // foreign fingerprint, snapshot mismatch, torn frame — returns
        // `None` and recovery falls back to plain snapshot replay.
        let bytes = fs::read(self.segments_path()).ok()?;
        let snapshot = fs::read(self.snapshot_path()).ok()?;
        let mut r = Reader::new(&bytes);
        r.read_header(ArtifactKind::Segment, &self.fingerprint)
            .ok()?;
        let bound_crc = r.get_u32().ok()?;
        if bound_crc != codec::crc32(&snapshot) {
            return None;
        }
        let blob = r.get_framed().ok()?;
        r.expect_end().ok()?;
        Some(blob.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SystemParams;
    use crate::BiometricDevice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fe-store-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records(n: usize) -> (SystemParams, Vec<EnrollmentRecord>) {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(50);
        let records = (0..n)
            .map(|u| {
                let bio = params.sketch().line().random_vector(8, &mut rng);
                device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap()
            })
            .collect();
        (params, records)
    }

    #[test]
    fn event_codec_roundtrip() {
        let (_, records) = sample_records(1);
        for event in [
            LogEvent::Enroll(records[0].clone()),
            LogEvent::Revoke("someone".into()),
            LogEvent::EnrollRejected {
                id: "mallory".into(),
                matched: "alice".into(),
            },
        ] {
            assert_eq!(decode_event(&encode_event(event.as_ref())).unwrap(), event);
        }
    }

    #[test]
    fn memory_store_replay_and_compaction() {
        let (_, records) = sample_records(2);
        let mut store = MemoryStore::new();
        store.append(LogEventRef::Enroll(&records[0])).unwrap();
        store.append(LogEventRef::Enroll(&records[1])).unwrap();
        store.append(LogEventRef::Revoke("user-0")).unwrap();
        assert_eq!(store.journal_len(), 3);
        assert_eq!(store.load().unwrap().len(), 3);

        store.compact_records(&records[1..]).unwrap();
        assert_eq!(store.journal_len(), 0);
        let events = store.load().unwrap();
        assert_eq!(events, vec![LogEvent::Enroll(records[1].clone())]);
    }

    #[test]
    fn file_store_journal_roundtrip() {
        let dir = temp_dir("journal");
        let (params, records) = sample_records(3);
        let fp = params.fingerprint();

        let mut store = FileStore::open(&dir, fp).unwrap();
        for r in &records {
            store.append(LogEventRef::Enroll(r)).unwrap();
        }
        store.append(LogEventRef::Revoke("user-1")).unwrap();
        drop(store); // "crash": nothing flushed beyond OS buffers needed

        let mut store = FileStore::open(&dir, fp).unwrap();
        let events = store.load().unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], LogEvent::Enroll(records[0].clone()));
        assert_eq!(events[3], LogEvent::Revoke("user-1".into()));
        assert_eq!(store.torn_bytes_discarded(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_snapshot_and_tail() {
        let dir = temp_dir("snapshot");
        let (params, records) = sample_records(4);
        let fp = params.fingerprint();

        let mut store = FileStore::open(&dir, fp).unwrap();
        for r in &records[..3] {
            store.append(LogEventRef::Enroll(r)).unwrap();
        }
        store.compact_records(&records[..3]).unwrap();
        assert_eq!(store.journal_len(), 0);
        // Post-snapshot tail.
        store.append(LogEventRef::Revoke("user-2")).unwrap();
        store.append(LogEventRef::Enroll(&records[3])).unwrap();
        drop(store);

        let mut store = FileStore::open(&dir, fp).unwrap();
        let events = store.load().unwrap();
        assert_eq!(events.len(), 5); // 3 snapshot + 2 tail
        assert_eq!(events[3], LogEvent::Revoke("user-2".into()));
        assert_eq!(events[4], LogEvent::Enroll(records[3].clone()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_replay() {
        let dir = temp_dir("torn");
        let (params, records) = sample_records(3);
        let fp = params.fingerprint();

        let mut store = FileStore::open(&dir, fp).unwrap();
        for r in &records {
            store.append(LogEventRef::Enroll(r)).unwrap();
        }
        assert_eq!(store.journal_len(), 3);
        drop(store);

        // Reopening counts the persisted frames immediately.
        assert_eq!(FileStore::open(&dir, fp).unwrap().journal_len(), 3);

        // Simulate a crash mid-write: chop bytes off the final frame.
        let journal = dir.join("journal.fel");
        let len = fs::metadata(&journal).unwrap().len();
        let file = OpenOptions::new().write(true).open(&journal).unwrap();
        file.set_len(len - 7).unwrap();
        drop(file);

        let mut store = FileStore::open(&dir, fp).unwrap();
        let events = store.load().unwrap();
        assert_eq!(events.len(), 2, "torn third record must be dropped");
        assert!(store.torn_bytes_discarded() > 0);

        // The truncation repaired the file: append + reload is clean.
        store.append(LogEventRef::Revoke("user-0")).unwrap();
        drop(store);
        let mut store = FileStore::open(&dir, fp).unwrap();
        let events = store.load().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(store.torn_bytes_discarded(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_journal_corruption_is_an_error_and_preserves_the_file() {
        let dir = temp_dir("corrupt");
        let (params, records) = sample_records(2);
        let fp = params.fingerprint();

        let mut store = FileStore::open(&dir, fp).unwrap();
        for r in &records {
            store.append(LogEventRef::Enroll(r)).unwrap();
        }
        drop(store);

        // Flip a byte inside the FIRST frame's payload: CRC fails with a
        // valid frame still behind it — damage at rest, not a torn tail.
        let journal = dir.join("journal.fel");
        let mut bytes = fs::read(&journal).unwrap();
        let idx = HEADER_LEN as usize + 8 + 3;
        bytes[idx] ^= 0xff;
        fs::write(&journal, &bytes).unwrap();

        // Open refuses (acknowledged data would be lost) and must NOT
        // destroy the file: the intact second frame stays salvageable.
        assert!(matches!(
            FileStore::open(&dir, fp),
            Err(ProtocolError::Codec(CodecError::BadChecksum))
        ));
        assert_eq!(
            fs::read(&journal).unwrap().len(),
            bytes.len(),
            "corrupt journal must be preserved for salvage"
        );

        // A corrupt *final* frame, by contrast, is indistinguishable
        // from a torn write and is truncated at open.
        bytes[idx] ^= 0xff; // heal frame 1
        let last = bytes.len() - 3;
        bytes[last] ^= 0xff; // damage frame 2's payload tail
        fs::write(&journal, &bytes).unwrap();
        let mut store = FileStore::open(&dir, fp).unwrap();
        assert!(store.torn_bytes_discarded() > 0);
        let events = store.load().unwrap();
        assert_eq!(events.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_open_of_a_live_store_is_refused() {
        let dir = temp_dir("lock");
        let (params, records) = sample_records(1);
        let fp = params.fingerprint();

        let mut store = FileStore::open(&dir, fp).unwrap();
        store.append(LogEventRef::Enroll(&records[0])).unwrap();
        // A second writer on the same directory must fail loudly…
        assert!(matches!(
            FileStore::open(&dir, fp),
            Err(ProtocolError::Storage(_))
        ));
        // …and the failed attempt must not have broken the first
        // holder's lock: a third attempt still fails.
        assert!(FileStore::open(&dir, fp).is_err());
        drop(store);
        // Dropping releases the lock.
        let store = FileStore::open(&dir, fp).unwrap();
        assert_eq!(store.journal_len(), 1);
        drop(store);

        // A stale lock from a dead process is stolen…
        fs::write(dir.join("lock.pid"), "4294000001 12345\n").unwrap();
        let store = FileStore::open(&dir, fp).unwrap();
        assert_eq!(store.journal_len(), 1);
        drop(store);

        // …and so is a lock whose pid is alive but *recycled*: pid 1
        // exists, but its start time cannot match the bogus one stored.
        if process_start_time(1).is_some() {
            fs::write(dir.join("lock.pid"), "1 18446744073709551614\n").unwrap();
            let store = FileStore::open(&dir, fp).unwrap();
            assert_eq!(store.journal_len(), 1);
            drop(store);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn own_start_time_is_readable() {
        // The lock's pid-recycling defense depends on this; if /proc is
        // present it must parse (comm fields with spaces included).
        if Path::new("/proc").is_dir() {
            assert!(process_start_time(std::process::id()).is_some());
        }
        assert_eq!(parse_lock("123 456"), Some((123, 456)));
        assert_eq!(parse_lock("123\n"), Some((123, 0)));
        assert_eq!(parse_lock("garbage"), None);
        assert_eq!(parse_lock(""), None);
    }

    #[test]
    fn fingerprint_mismatch_rejected_at_open() {
        let dir = temp_dir("fp");
        let (params, records) = sample_records(1);
        let mut store = FileStore::open(&dir, params.fingerprint()).unwrap();
        store.append(LogEventRef::Enroll(&records[0])).unwrap();
        drop(store);

        let other = Fingerprint::of(b"different params");
        match FileStore::open(&dir, other) {
            Err(ProtocolError::Codec(CodecError::FingerprintMismatch { .. })) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_journal_header_is_rewritten() {
        let dir = temp_dir("short-header");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("journal.fel"), b"FEC").unwrap(); // torn at creation
        let (params, _) = sample_records(0);
        let mut store = FileStore::open(&dir, params.fingerprint()).unwrap();
        assert!(store.load().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_mode_appends_still_replay() {
        let dir = temp_dir("sync");
        let (params, records) = sample_records(1);
        let mut store = FileStore::open(&dir, params.fingerprint()).unwrap();
        store.set_sync(true);
        store.append(LogEventRef::Enroll(&records[0])).unwrap();
        assert_eq!(store.load().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
