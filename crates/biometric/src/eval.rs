//! Empirical FAR/FRR measurement.

/// Empirical error rates of a biometric matcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRates {
    /// False accept rate: fraction of impostor trials that were accepted.
    pub far: f64,
    /// False reject rate: fraction of genuine trials that were rejected.
    pub frr: f64,
    /// Number of genuine trials run.
    pub genuine_trials: usize,
    /// Number of impostor trials run.
    pub impostor_trials: usize,
}

/// Measures FAR and FRR by Monte Carlo.
///
/// `genuine_trial()` must return `true` when a genuine presentation was
/// **accepted**; `impostor_trial()` must return `true` when an impostor
/// presentation was **accepted**.
///
/// ```rust
/// use fe_biometric::measure_error_rates;
///
/// // A matcher that always accepts genuine and rejects 1-in-4 impostors.
/// let mut flip = 0u32;
/// let rates = measure_error_rates(100, 100, || true, || {
///     flip += 1;
///     flip % 4 == 0
/// });
/// assert_eq!(rates.frr, 0.0);
/// assert!((rates.far - 0.25).abs() < 1e-9);
/// ```
pub fn measure_error_rates(
    genuine_trials: usize,
    impostor_trials: usize,
    mut genuine_trial: impl FnMut() -> bool,
    mut impostor_trial: impl FnMut() -> bool,
) -> ErrorRates {
    let mut false_rejects = 0usize;
    for _ in 0..genuine_trials {
        if !genuine_trial() {
            false_rejects += 1;
        }
    }
    let mut false_accepts = 0usize;
    for _ in 0..impostor_trials {
        if impostor_trial() {
            false_accepts += 1;
        }
    }
    ErrorRates {
        far: if impostor_trials == 0 {
            0.0
        } else {
            false_accepts as f64 / impostor_trials as f64
        },
        frr: if genuine_trials == 0 {
            0.0
        } else {
            false_rejects as f64 / genuine_trials as f64
        },
        genuine_trials,
        impostor_trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matcher() {
        let rates = measure_error_rates(50, 50, || true, || false);
        assert_eq!(rates.far, 0.0);
        assert_eq!(rates.frr, 0.0);
        assert_eq!(rates.genuine_trials, 50);
        assert_eq!(rates.impostor_trials, 50);
    }

    #[test]
    fn broken_matcher() {
        let rates = measure_error_rates(10, 10, || false, || true);
        assert_eq!(rates.far, 1.0);
        assert_eq!(rates.frr, 1.0);
    }

    #[test]
    fn zero_trials_do_not_divide_by_zero() {
        let rates = measure_error_rates(0, 0, || true, || false);
        assert_eq!(rates.far, 0.0);
        assert_eq!(rates.frr, 0.0);
    }

    #[test]
    fn fractional_rates() {
        let mut i = 0u32;
        let rates = measure_error_rates(
            100,
            0,
            || {
                i += 1;
                !i.is_multiple_of(10) // reject every 10th genuine
            },
            || false,
        );
        assert!((rates.frr - 0.10).abs() < 1e-9);
    }
}
