//! HKDF (RFC 5869): extract-and-expand key derivation.

use crate::digest::Digest;
use crate::hmac::Hmac;
use std::marker::PhantomData;

/// HKDF keyed by a digest type.
///
/// Used by the identification protocol examples to derive application keys
/// from the fuzzy-extractor output, and by [`crate::extractor::HmacExtractor`]
/// to stretch extractor output to arbitrary lengths.
///
/// ```rust
/// use fe_crypto::{Hkdf, Sha256};
///
/// let okm = Hkdf::<Sha256>::derive(b"input key material", b"salt", b"ctx", 42);
/// assert_eq!(okm.len(), 42);
/// ```
#[derive(Debug)]
pub struct Hkdf<D: Digest> {
    _marker: PhantomData<D>,
}

impl<D: Digest> Hkdf<D> {
    /// HKDF-Extract: computes a pseudorandom key from input key material.
    pub fn extract(salt: &[u8], ikm: &[u8]) -> Vec<u8> {
        Hmac::<D>::mac(salt, ikm)
    }

    /// HKDF-Expand: stretches a pseudorandom key to `len` output bytes.
    ///
    /// # Panics
    /// Panics if `len > 255 * D::OUTPUT_LEN` (RFC 5869 limit).
    pub fn expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
        assert!(
            len <= 255 * D::OUTPUT_LEN,
            "HKDF output limited to 255 blocks"
        );
        let mut okm = Vec::with_capacity(len);
        let mut t: Vec<u8> = Vec::new();
        let mut counter = 1u8;
        while okm.len() < len {
            let mut h = Hmac::<D>::new(prk);
            h.update(&t);
            h.update(info);
            h.update(&[counter]);
            t = h.finalize();
            let take = (len - okm.len()).min(t.len());
            okm.extend_from_slice(&t[..take]);
            counter += 1;
        }
        okm
    }

    /// Extract-then-expand in one call.
    pub fn derive(ikm: &[u8], salt: &[u8], info: &[u8], len: usize) -> Vec<u8> {
        let prk = Self::extract(salt, ikm);
        Self::expand(&prk, info, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_decode, hex_encode, Sha256};

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = hex_decode("000102030405060708090a0b0c").unwrap();
        let info = hex_decode("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = Hkdf::<Sha256>::extract(&salt, &ikm);
        assert_eq!(
            hex_encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = Hkdf::<Sha256>::expand(&prk, &info, 42);
        assert_eq!(
            hex_encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = Hkdf::<Sha256>::derive(&ikm, &[], &[], 42);
        assert_eq!(
            hex_encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_multiple_blocks() {
        let prk = Hkdf::<Sha256>::extract(b"salt", b"ikm");
        let okm = Hkdf::<Sha256>::expand(&prk, b"info", 100);
        assert_eq!(okm.len(), 100);
        // Prefix property: shorter outputs are prefixes of longer ones.
        let short = Hkdf::<Sha256>::expand(&prk, b"info", 32);
        assert_eq!(&okm[..32], &short[..]);
    }

    #[test]
    #[should_panic(expected = "255 blocks")]
    fn expand_too_long_panics() {
        Hkdf::<Sha256>::expand(&[0u8; 32], b"", 255 * 32 + 1);
    }
}
