//! HMAC-DRBG (NIST SP 800-90A style) — a deterministic random bit generator.
//!
//! Used for (a) reproducible test/benchmark randomness, (b) RFC-6979-style
//! deterministic DSA/Schnorr nonces, and (c) deriving key material from the
//! fuzzy-extractor output. Implements [`rand::RngCore`] so it can feed the
//! `fe-bigint` generators directly.

use crate::{Hmac, Sha256};
use rand::RngCore;

/// HMAC-SHA-256 deterministic random bit generator.
///
/// ```rust
/// use fe_crypto::HmacDrbg;
/// use rand::RngCore;
///
/// let mut a = HmacDrbg::new(b"seed", b"context");
/// let mut b = HmacDrbg::new(b"seed", b"context");
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
pub struct HmacDrbg {
    k: Vec<u8>,
    v: Vec<u8>,
    /// Bytes generated since instantiation (diagnostic only).
    generated: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from entropy input and a personalization
    /// string.
    pub fn new(entropy: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            k: vec![0u8; 32],
            v: vec![1u8; 32],
            generated: 0,
        };
        let seed: Vec<u8> = entropy
            .iter()
            .chain(personalization.iter())
            .copied()
            .collect();
        drbg.update(Some(&seed));
        drbg
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut h = Hmac::<Sha256>::new(&self.k);
        h.update(&self.v);
        h.update(&[0x00]);
        if let Some(data) = provided {
            h.update(data);
        }
        self.k = h.finalize();
        self.v = Hmac::<Sha256>::mac(&self.k, &self.v);

        if let Some(data) = provided {
            let mut h = Hmac::<Sha256>::new(&self.k);
            h.update(&self.v);
            h.update(&[0x01]);
            h.update(data);
            self.k = h.finalize();
            self.v = Hmac::<Sha256>::mac(&self.k, &self.v);
        }
    }

    /// Fills `out` with deterministic pseudorandom bytes.
    pub fn generate(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            self.v = Hmac::<Sha256>::mac(&self.k, &self.v);
            let take = (out.len() - filled).min(self.v.len());
            out[filled..filled + take].copy_from_slice(&self.v[..take]);
            filled += take;
        }
        self.update(None);
        self.generated += out.len() as u64;
    }

    /// Returns `len` deterministic pseudorandom bytes.
    pub fn generate_vec(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.generate(&mut out);
        out
    }

    /// Total bytes generated since instantiation.
    pub fn bytes_generated(&self) -> u64 {
        self.generated
    }
}

impl std::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the internal state: it is key material.
        f.debug_struct("HmacDrbg")
            .field("generated", &self.generated)
            .finish_non_exhaustive()
    }
}

impl RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.generate(&mut buf);
        u32::from_be_bytes(buf)
    }

    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.generate(&mut buf);
        u64::from_be_bytes(buf)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.generate(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.generate(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = HmacDrbg::new(b"entropy", b"p13n");
        let mut b = HmacDrbg::new(b"entropy", b"p13n");
        assert_eq!(a.generate_vec(64), b.generate_vec(64));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"entropy-1", b"");
        let mut b = HmacDrbg::new(b"entropy-2", b"");
        assert_ne!(a.generate_vec(32), b.generate_vec(32));
    }

    #[test]
    fn personalization_matters() {
        let mut a = HmacDrbg::new(b"e", b"app-a");
        let mut b = HmacDrbg::new(b"e", b"app-b");
        assert_ne!(a.generate_vec(32), b.generate_vec(32));
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"e", b"");
        let mut b = HmacDrbg::new(b"e", b"");
        let _ = a.generate_vec(16);
        let _ = b.generate_vec(16);
        b.reseed(b"fresh entropy");
        assert_ne!(a.generate_vec(16), b.generate_vec(16));
    }

    #[test]
    fn chunked_generation_matches_oneshot() {
        // SP 800-90A HMAC_DRBG reseeds the state after every generate()
        // call, so two 16-byte calls differ from one 32-byte call; but the
        // *same* call pattern must reproduce the same stream.
        let mut a = HmacDrbg::new(b"e", b"");
        let mut b = HmacDrbg::new(b"e", b"");
        let mut got_a = a.generate_vec(16);
        got_a.extend(a.generate_vec(16));
        let mut got_b = b.generate_vec(16);
        got_b.extend(b.generate_vec(16));
        assert_eq!(got_a, got_b);
    }

    #[test]
    fn rngcore_impl_works() {
        let mut d = HmacDrbg::new(b"rng", b"");
        let x = d.next_u64();
        let y = d.next_u64();
        assert_ne!(x, y); // overwhelming probability
        let mut buf = [0u8; 100];
        d.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 100]);
    }

    #[test]
    fn bytes_generated_counter() {
        let mut d = HmacDrbg::new(b"c", b"");
        let _ = d.generate_vec(10);
        let _ = d.generate_vec(22);
        assert_eq!(d.bytes_generated(), 32);
    }

    #[test]
    fn debug_does_not_leak_state() {
        let d = HmacDrbg::new(b"secret", b"");
        let s = format!("{d:?}");
        assert!(!s.contains("secret"));
        assert!(s.contains("generated"));
    }
}
