//! # fuzzy-id
//!
//! A Rust reproduction of *Fuzzy Extractors for Biometric Identification*
//! (Li, Nepal, Guo, Mu, Susilo — ICDCS 2017): a succinct fuzzy extractor
//! built on a Chebyshev-distance secure sketch over a discretized number
//! line, plus the first fuzzy-extractor-based biometric *identification*
//! protocol with constant heavy-crypto cost per identification.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`core`] (`fe-core`) — number line, secure sketch, robust sketch,
//!   fuzzy extractor, sketch matching/index, security analysis, baselines.
//! * [`protocol`] (`fe-protocol`) — enrollment, verification and
//!   identification protocols (proposed + normal approach); the
//!   authentication server is generic over its sketch index and scales
//!   out via the sharded, batch-capable `concurrent::SharedServer`.
//! * [`crypto`] (`fe-crypto`) — SHA-256/SHA-512, HMAC, HMAC-DRBG, DSA,
//!   Schnorr, strong extractors.
//! * [`net`] (`fe-net`) — the networked front door: framed TCP server,
//!   blocking client, handshake and envelope codecs (see `PROTOCOL.md`
//!   for the normative wire spec).
//! * [`biometric`] (`fe-biometric`) — synthetic biometric workloads.
//! * [`metrics`] (`fe-metrics`) — metric spaces (Chebyshev, Hamming, …).
//! * [`ecc`] (`fe-ecc`) — BCH / Reed–Solomon codes for the baselines.
//! * [`bigint`] (`fe-bigint`) — arbitrary-precision arithmetic.
//!
//! ## Quickstart
//!
//! ```rust
//! use fuzzy_id::core::{ChebyshevSketch, FuzzyExtractor, NumberLine, SecureSketch};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // Paper parameters: a = 100, k = 4, v = 500, t = 100.
//! let line = NumberLine::new(100, 4, 500)?;
//! let sketch = ChebyshevSketch::new(line, 100)?;
//! let fe = FuzzyExtractor::with_defaults(sketch, 32);
//!
//! let bio = fe.sketcher().line().random_vector(16, &mut rng);
//! let (key, helper) = fe.generate(&bio, &mut rng)?;
//!
//! // A noisy reading within Chebyshev distance t reproduces the key.
//! let mut noisy = bio.clone();
//! noisy.iter_mut().for_each(|x| *x += 37);
//! let key2 = fe.reproduce(&noisy, &helper)?;
//! assert_eq!(key, key2);
//! # Ok(())
//! # }
//! ```

pub use fe_bigint as bigint;
pub use fe_biometric as biometric;
pub use fe_core as core;
pub use fe_crypto as crypto;
pub use fe_ecc as ecc;
pub use fe_metrics as metrics;
pub use fe_net as net;
pub use fe_protocol as protocol;
