//! The [`SecureSketch`] trait (Definition 1 of the paper).

use crate::SketchError;
use rand::RngCore;

/// A secure sketch over integer feature vectors: `SS` produces public
/// helper data `s` from an enrolled vector `w`; `Rec` recovers `w` exactly
/// from any reading `w'` close to it.
///
/// Implementors define what "close" means (for the paper's
/// [`crate::ChebyshevSketch`], Chebyshev distance at most `t` on the
/// number-line ring).
pub trait SecureSketch {
    /// The public sketch type.
    type Sketch: Clone;

    /// `SS(w; coins) → s`: computes the public sketch of `input`.
    /// Randomness is used only for tie-breaking coin flips (boundary
    /// points), never for hiding — the sketch is public either way.
    ///
    /// # Errors
    /// Implementations reject invalid inputs with [`SketchError`].
    fn sketch<R: RngCore + ?Sized>(
        &self,
        input: &[i64],
        rng: &mut R,
    ) -> Result<Self::Sketch, SketchError>;

    /// `Rec(w', s) → w`: recovers the enrolled vector from a close
    /// reading.
    ///
    /// # Errors
    /// [`SketchError::OutOfRange`] (the paper's `⊥`) when the reading is
    /// too far from the enrolled vector; other variants for malformed
    /// inputs.
    fn recover(&self, reading: &[i64], sketch: &Self::Sketch) -> Result<Vec<i64>, SketchError>;

    /// The dimension expected by this sketcher, if fixed; `None` when any
    /// dimension is accepted (the paper's schemes are dimension-agnostic).
    fn expected_dim(&self) -> Option<usize> {
        None
    }
}
