//! Bit-level operations on [`Natural`]: shifts, bit access, bit length.

use crate::Natural;
use std::ops::{Shl, Shr};

impl Natural {
    /// Number of significant bits (`0` has bit length `0`).
    ///
    /// ```rust
    /// use fe_bigint::Natural;
    /// assert_eq!(Natural::from(0u64).bit_length(), 0);
    /// assert_eq!(Natural::from(1u64).bit_length(), 1);
    /// assert_eq!(Natural::from(255u64).bit_length(), 8);
    /// ```
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit numbering; out-of-range bits are 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            Some(l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Returns a copy with bit `i` set to `value`.
    pub fn with_bit(&self, i: usize, value: bool) -> Natural {
        let limb = i / 64;
        let mut limbs = self.limbs.clone();
        if limbs.len() <= limb {
            limbs.resize(limb + 1, 0);
        }
        if value {
            limbs[limb] |= 1u64 << (i % 64);
        } else {
            limbs[limb] &= !(1u64 << (i % 64));
        }
        Natural::from_limbs(limbs)
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> Natural {
        if self.is_zero() || bits == 0 {
            if bits == 0 {
                return self.clone();
            }
            return Natural::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        Natural::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> Natural {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Natural::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut l = self.limbs[i] >> bit_shift;
            if bit_shift != 0 {
                if let Some(&next) = self.limbs.get(i + 1) {
                    l |= next << (64 - bit_shift);
                }
            }
            out.push(l);
        }
        Natural::from_limbs(out)
    }

    /// Number of trailing zero bits; `None` for the value `0`.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// `2^e`.
    pub fn power_of_two(e: usize) -> Natural {
        Natural::one().shl_bits(e)
    }
}

impl Shl<usize> for &Natural {
    type Output = Natural;
    fn shl(self, rhs: usize) -> Natural {
        self.shl_bits(rhs)
    }
}

impl Shr<usize> for &Natural {
    type Output = Natural;
    fn shr(self, rhs: usize) -> Natural {
        self.shr_bits(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_length_cross_limb() {
        assert_eq!(Natural::from(u64::MAX).bit_length(), 64);
        assert_eq!(Natural::from(u64::MAX as u128 + 1).bit_length(), 65);
        assert_eq!(Natural::power_of_two(200).bit_length(), 201);
    }

    #[test]
    fn shift_roundtrip() {
        let n = Natural::from(0xdead_beefu64);
        for s in [0usize, 1, 63, 64, 65, 127, 128, 200] {
            assert_eq!(n.shl_bits(s).shr_bits(s), n, "shift {s}");
        }
    }

    #[test]
    fn shr_discards_low_bits() {
        let n = Natural::from(0b1011u64);
        assert_eq!(n.shr_bits(1), Natural::from(0b101u64));
        assert_eq!(n.shr_bits(4), Natural::zero());
    }

    #[test]
    fn bit_access() {
        let n = Natural::power_of_two(100);
        assert!(n.bit(100));
        assert!(!n.bit(99));
        assert!(!n.bit(101));
        assert!(!n.bit(100_000));
    }

    #[test]
    fn with_bit_set_and_clear() {
        let n = Natural::zero().with_bit(130, true);
        assert!(n.bit(130));
        assert_eq!(n, Natural::power_of_two(130));
        let n2 = n.with_bit(130, false);
        assert!(n2.is_zero());
    }

    #[test]
    fn trailing_zeros_values() {
        assert_eq!(Natural::zero().trailing_zeros(), None);
        assert_eq!(Natural::one().trailing_zeros(), Some(0));
        assert_eq!(Natural::power_of_two(77).trailing_zeros(), Some(77));
    }

    #[test]
    fn operator_forms() {
        let n = Natural::from(5u64);
        assert_eq!(&n << 3, Natural::from(40u64));
        assert_eq!(&Natural::from(40u64) >> 3, n);
    }
}
