//! Epoch storage engine vs the Vec-of-Vec reference model: arbitrary
//! enroll/revoke/maintain/compact interleavings — with tier thresholds
//! tiny enough that every script crosses freeze, merge, and seal — must
//! be observably identical to the seed's boxed-row layout, and the
//! lock-free readers must agree with the writer at every quiescent
//! point *and* stay coherent while a writer churns under them.

use fuzzy_id::core::conditions::sketches_match;
use fuzzy_id::core::{EpochIndex, EpochRead, FilterConfig, IndexReader, PlaneWidth, SketchIndex};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The seed storage layout as the reference model: boxed rows behind
/// `Option` tombstones (same as `tests/properties.rs`, which pins the
/// non-epoch indexes to it).
struct ModelIndex {
    t: u64,
    ka: u64,
    entries: Vec<Option<Vec<i64>>>,
}

impl ModelIndex {
    fn new(t: u64, ka: u64) -> Self {
        ModelIndex {
            t,
            ka,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, sketch: &[i64]) -> usize {
        self.entries.push(Some(sketch.to_vec()));
        self.entries.len() - 1
    }

    fn matches(&self, s: &[i64], probe: &[i64]) -> bool {
        s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
    }

    fn lookup(&self, probe: &[i64]) -> Option<usize> {
        self.entries
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| self.matches(s, probe)))
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, s)| s.as_ref().is_some_and(|s| self.matches(s, probe)))
            .map(|(i, _)| i)
            .collect()
    }

    fn remove(&mut self, id: usize) -> bool {
        match self.entries.get_mut(id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    fn compact(&mut self) -> Vec<(usize, usize)> {
        let mut mapping = Vec::new();
        let entries = std::mem::take(&mut self.entries);
        for (old, slot) in entries.into_iter().enumerate() {
            if let Some(s) = slot {
                mapping.push((old, self.entries.len()));
                self.entries.push(Some(s));
            }
        }
        mapping
    }

    fn live(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// One scripted operation, applied to the model and the epoch index in
/// lockstep.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    /// Probe near the `n % inserted`-th logged sketch with ±t noise.
    ProbeNear(usize, Vec<i64>),
    Probe(Vec<i64>),
    Remove(usize),
    /// Tombstone-driven sealed-segment rewrite (ids stable).
    Maintain,
    /// Full renumbering compaction.
    Compact,
}

/// Ring parameters spanning all three arena cell widths (i16 / i32 /
/// i64, the latter including the `ka ≥ 2⁶³` i128-widening class).
fn ring_params() -> impl Strategy<Value = (u64, u64)> {
    (0u8..4)
        .prop_flat_map(|width| {
            let (lo, hi) = match width {
                0 => (2u64, (1 << 15) - 1),
                1 => (1u64 << 15, (1 << 31) - 1),
                2 => (1u64 << 31, (1 << 62) - 1),
                _ => (1u64 << 63, u64::MAX),
            };
            lo..=hi
        })
        .prop_flat_map(|ka| (1u64..(ka / 2).clamp(2, 1 << 30), Just(ka)))
}

fn epoch_case() -> impl Strategy<Value = (u64, u64, Vec<Op>)> {
    (ring_params(), 1usize..5).prop_flat_map(|((t, ka), dim)| {
        let half = (ka / 2).min(i64::MAX as u64 / 4) as i64;
        let op = (
            0u8..14,
            prop::collection::vec(-2 * half..=2 * half, dim..dim + 1),
            prop::collection::vec(-(t as i64)..=(t as i64), dim..dim + 1),
            any::<usize>(),
        )
            .prop_map(|(sel, sketch, noise, n)| match sel {
                0..=4 => Op::Insert(sketch),
                5..=7 => Op::ProbeNear(n, noise),
                8..=9 => Op::Probe(sketch),
                10..=11 => Op::Remove(n),
                12 => Op::Maintain,
                _ => Op::Compact,
            });
        (Just(t), Just(ka), prop::collection::vec(op, 1..64))
    })
}

/// After every op, a *fresh* lock-free reader must agree with the model
/// on every read surface it exposes.
fn check_reader_quiescent(index: &EpochIndex, model: &ModelIndex, probes: &[Vec<i64>]) {
    let reader = index.reader();
    prop_assert_eq!(reader.generation(), SketchIndex::generation(index));
    for probe in probes {
        let all = model.lookup_all(probe);
        prop_assert_eq!(reader.find_first(probe), all.first().copied());
        prop_assert_eq!(&reader.find_at_most(probe, 2), &all[..all.len().min(2)]);
        prop_assert_eq!(&reader.find_at_most(probe, usize::MAX), &all);
        // Subset-masked scan over every other logged slot.
        let subset: Vec<usize> = (0..model.entries.len()).step_by(2).collect();
        let want: Vec<usize> = all.iter().copied().filter(|id| id % 2 == 0).collect();
        prop_assert_eq!(
            reader.find_in_subset(probe, &subset, usize::MAX),
            want,
            "subset scan diverged"
        );
    }
    let batch = reader.find_first_batch(probes);
    for (probe, got) in probes.iter().zip(batch) {
        prop_assert_eq!(model.lookup(probe), got, "batch path diverged");
    }
}

/// Drives one epoch index and the model through the same script.
fn check_epoch_against_model(mut index: EpochIndex, t: u64, ka: u64, ops: &[Op]) {
    let mut model = ModelIndex::new(t, ka);
    let mut inserted: Vec<Vec<i64>> = Vec::new();
    let mut probes_seen: Vec<Vec<i64>> = Vec::new();
    for op in ops {
        match op {
            Op::Insert(sketch) => {
                let a = model.insert(sketch);
                let b = index.insert(sketch);
                prop_assert_eq!(a, b, "insert ids diverged");
                inserted.push(sketch.clone());
            }
            Op::ProbeNear(n, noise) => {
                if inserted.is_empty() {
                    continue;
                }
                let base = &inserted[n % inserted.len()];
                let probe: Vec<i64> = base
                    .iter()
                    .zip(noise.iter())
                    .map(|(&v, &d)| v.saturating_add(d))
                    .collect();
                prop_assert_eq!(model.lookup(&probe), index.lookup(&probe));
                prop_assert_eq!(model.lookup_all(&probe), index.lookup_all(&probe));
                probes_seen.push(probe);
            }
            Op::Probe(probe) => {
                prop_assert_eq!(model.lookup(probe), index.lookup(probe));
                prop_assert_eq!(model.lookup_all(probe), index.lookup_all(probe));
                probes_seen.push(probe.clone());
            }
            Op::Remove(n) => {
                let slots = model.entries.len();
                if slots == 0 {
                    continue;
                }
                let id = n % slots;
                prop_assert_eq!(model.remove(id), index.remove(id), "remove({})", id);
            }
            Op::Maintain => {
                // Ids are stable across maintenance, so the model does
                // nothing — every observable below must still agree.
                index.maintain();
            }
            Op::Compact => {
                prop_assert_eq!(model.compact(), index.compact());
                inserted = model.entries.iter().flatten().cloned().collect();
            }
        }
        prop_assert_eq!(model.live(), index.len(), "live count diverged");
        check_reader_quiescent(&index, &model, &probes_seen);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Epoch index ≡ the Vec-of-Vec model under arbitrary interleavings
    /// of insert/remove/maintain/compact, with tier thresholds tiny
    /// enough (freeze at 3 rows, merge at 2 runs, seal at 6 rows) that
    /// every script exercises the full staging → run → merged → sealed
    /// pipeline — for each vector kernel and plane width (the sealed
    /// segments rebuild their quantized byte plane on seal when
    /// `PlaneWidth::U8` is pinned), across every cell width the ring
    /// strategy spans.
    #[test]
    fn epoch_index_matches_vec_of_vec_model((t, ka, ops) in epoch_case()) {
        for filter in [
            FilterConfig::default(),
            FilterConfig::swar(),
            FilterConfig::disabled(),
            FilterConfig::default().with_width(PlaneWidth::U8),
            FilterConfig::swar().with_width(PlaneWidth::U8),
            FilterConfig::default().with_width(PlaneWidth::U16),
        ] {
            check_epoch_against_model(
                EpochIndex::with_thresholds(t, ka, filter, 3, 2, 6),
                t, ka, &ops,
            );
        }
    }

    /// Bulk-mode equivalence: the same scripts driven through a
    /// `reserve`-primed index (publishes suppressed until `flush`, as
    /// recovery does) end in the same observable state.
    #[test]
    fn epoch_bulk_load_matches_incremental((t, ka, ops) in epoch_case()) {
        let mut bulk = EpochIndex::with_thresholds(t, ka, FilterConfig::default(), 3, 2, 6);
        let mut incremental =
            EpochIndex::with_thresholds(t, ka, FilterConfig::default(), 3, 2, 6);
        let sketches: Vec<&Vec<i64>> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Insert(s) => Some(s),
                _ => None,
            })
            .collect();
        if !sketches.is_empty() {
            let dim = sketches[0].len();
            // Large `additional` arms bulk mode regardless of count.
            bulk.reserve(5000, dim);
            for s in &sketches {
                prop_assert_eq!(bulk.insert(s), incremental.insert(s));
            }
            bulk.flush();
            prop_assert_eq!(bulk.len(), incremental.len());
            let reader = bulk.reader();
            for s in &sketches {
                prop_assert_eq!(reader.find_first(s), incremental.lookup(s));
            }
        }
    }
}

/// Readers racing a writer: N reader threads hammer lock-free scans
/// while the writer churns enrolls, revocations, and maintenance under
/// them. Every reader observation must be explainable by *some*
/// published state:
///
/// - a stable row (inserted before the readers started, never removed)
///   is the lowest matching id in **every** snapshot, so `find_first`
///   on its probe must always return exactly it;
/// - any id returned for a churn probe must actually match that probe
///   (ids are append-only outside `compact`, which this test never
///   calls, so id → content is a pure function);
/// - snapshot generations never move backwards on a single reader.
#[test]
fn concurrent_readers_agree_with_some_published_state() {
    let (t, ka) = (10u64, 4096u64);
    let dim = 4usize;
    let stable = 24usize;
    // Row id → content, valid for stable and churn rows alike: slot j
    // sits at ring offset 100·j in every coordinate (> 2t apart, so
    // probes never cross-match), churn rows offset by +50 (> t from
    // both neighbors).
    let row = |j: usize| -> Vec<i64> {
        let off = if j < stable { 0 } else { 50 };
        vec![(100 * j as i64 + off) % ka as i64; dim]
    };

    let mut index = EpochIndex::with_thresholds(t, ka, FilterConfig::default(), 4, 2, 8);
    for j in 0..stable {
        assert_eq!(index.insert(&row(j)), j);
    }
    let reader_proto = index.reader();
    let stop = AtomicBool::new(false);
    let checks = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let reader = reader_proto.clone();
            let (stop, checks) = (&stop, &checks);
            scope.spawn(move || {
                let mut last_gen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let gen = reader.generation();
                    assert!(gen >= last_gen, "generation moved backwards");
                    last_gen = gen;
                    for j in 0..stable {
                        let probe = row(j);
                        assert_eq!(
                            reader.find_first(&probe),
                            Some(j),
                            "stable row {j} must match in every snapshot"
                        );
                        assert_eq!(reader.find_at_most(&probe, 2), vec![j]);
                    }
                    // Churn probes: matches are optional (the row may
                    // not exist / be revoked in this snapshot), but any
                    // returned id must genuinely match the probe.
                    for j in stable..stable + 40 {
                        let probe = row(j);
                        for id in reader.find_at_most(&probe, usize::MAX) {
                            assert!(
                                sketches_match(&row(id), &probe, t, ka),
                                "id {id} returned for probe {j} does not match it"
                            );
                        }
                    }
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Writer: 40 churn rounds of enroll + maintain + revoke — every
        // round crosses freeze/merge/seal boundaries at these tiny
        // thresholds, so readers race real segment-list publishes.
        for round in 0..40 {
            let id = stable + round;
            assert_eq!(index.insert(&row(id)), id);
            if round % 3 == 0 {
                index.maintain();
            }
            if round % 2 == 0 {
                assert!(index.remove(id));
            }
        }
        // Let the readers observe the final state at least once.
        while checks.load(Ordering::Relaxed) < 6 {
            std::hint::spin_loop();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiescent cross-check: the final published state equals the
    // sequential expectation (even churn rows revoked, odd ones live).
    let reader = index.reader();
    for j in stable..stable + 40 {
        let expect = ((j - stable) % 2 == 1).then_some(j);
        assert_eq!(reader.find_first(&row(j)), expect, "churn row {j}");
    }
}
