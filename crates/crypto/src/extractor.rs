//! Strong randomness extractors.
//!
//! The generic fuzzy-extractor construction (Dodis et al., reviewed in
//! Sec. II of the paper) needs a *strong extractor* `Ext(x; r)`: given a
//! public random seed `r` and a source `x` with enough min-entropy, the
//! output is statistically close to uniform even conditioned on `r`.
//!
//! Two implementations are provided:
//!
//! * [`HmacExtractor`] — HMAC-SHA-256 keyed by the seed. This is what the
//!   paper's Table II lists ("Random Extractor: SHA256"); it is an
//!   extractor under a random-oracle-style assumption on the compression
//!   function.
//! * [`ToeplitzExtractor`] — multiplication by a random Toeplitz matrix
//!   over GF(2), a 2-universal family, so the leftover hash lemma applies
//!   *unconditionally*. The paper glosses over this gap; we provide both
//!   and compare their cost in the ablation bench.

use crate::{Hkdf, Hmac, Sha256};

/// A strong randomness extractor `Ext(x; r) -> R`.
///
/// Implementations must be deterministic: the same `(input, seed)` pair
/// always produces the same output, which is what makes fuzzy-extractor
/// reproduction possible.
pub trait StrongExtractor {
    /// Output length in bytes.
    fn output_len(&self) -> usize;

    /// Required seed length in bytes for a given input length.
    fn seed_len(&self, input_len: usize) -> usize;

    /// Extracts `output_len()` nearly-uniform bytes from `input` using the
    /// public `seed`.
    ///
    /// # Panics
    /// Implementations may panic if `seed.len() < self.seed_len(input.len())`.
    fn extract(&self, input: &[u8], seed: &[u8]) -> Vec<u8>;
}

/// HMAC-SHA-256-based extractor (the paper's choice).
///
/// `Ext(x; r) = HKDF-Expand(HMAC-SHA256(key = r, msg = x), "fe-ext", ℓ)`.
/// The HKDF expansion step lets callers request more than 32 bytes.
///
/// ```rust
/// use fe_crypto::extractor::{HmacExtractor, StrongExtractor};
///
/// let ext = HmacExtractor::new(32);
/// let seed = [7u8; 32];
/// let r1 = ext.extract(b"biometric encoding", &seed);
/// let r2 = ext.extract(b"biometric encoding", &seed);
/// assert_eq!(r1, r2);
/// assert_eq!(r1.len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmacExtractor {
    output_len: usize,
}

impl HmacExtractor {
    /// Creates an extractor producing `output_len` bytes.
    pub fn new(output_len: usize) -> Self {
        HmacExtractor { output_len }
    }
}

impl StrongExtractor for HmacExtractor {
    fn output_len(&self) -> usize {
        self.output_len
    }

    fn seed_len(&self, _input_len: usize) -> usize {
        32
    }

    fn extract(&self, input: &[u8], seed: &[u8]) -> Vec<u8> {
        assert!(seed.len() >= 32, "HmacExtractor requires a 32-byte seed");
        let prk = Hmac::<Sha256>::mac(seed, input);
        Hkdf::<Sha256>::expand(&prk, b"fe-ext", self.output_len)
    }
}

/// Toeplitz-matrix extractor over GF(2) — a 2-universal hash family.
///
/// A Toeplitz matrix is constant along diagonals, so an `ℓ × n` matrix is
/// described by `n + ℓ - 1` seed bits. Output bit `i` is the parity of
/// `x · row_i`. We exploit the structure: for every set input bit `j`, XOR
/// the `ℓ`-bit seed window starting at bit `n - 1 - j` into the output.
/// Cost is `O(weight(x) · ℓ/64)` word operations.
///
/// ```rust
/// use fe_crypto::extractor::{StrongExtractor, ToeplitzExtractor};
///
/// let ext = ToeplitzExtractor::new(16);
/// let input = b"some biometric bytes";
/// let seed = vec![0xa7u8; ext.seed_len(input.len())];
/// let out = ext.extract(input, &seed);
/// assert_eq!(out.len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToeplitzExtractor {
    output_len: usize,
}

impl ToeplitzExtractor {
    /// Creates an extractor producing `output_len` bytes.
    pub fn new(output_len: usize) -> Self {
        ToeplitzExtractor { output_len }
    }

    /// Reads `count` bits of `bytes` starting at bit offset `start`
    /// (LSB-first within each byte) into a little-endian word vector.
    fn bit_window(bytes: &[u8], start: usize, count: usize) -> Vec<u64> {
        let words = count.div_ceil(64);
        let mut out = vec![0u64; words];
        for i in 0..count {
            let bit_idx = start + i;
            let bit = (bytes[bit_idx / 8] >> (bit_idx % 8)) & 1;
            if bit == 1 {
                out[i / 64] |= 1u64 << (i % 64);
            }
        }
        out
    }
}

impl StrongExtractor for ToeplitzExtractor {
    fn output_len(&self) -> usize {
        self.output_len
    }

    fn seed_len(&self, input_len: usize) -> usize {
        // n + ℓ - 1 bits, rounded up to bytes.
        (input_len * 8 + self.output_len * 8 - 1).div_ceil(8)
    }

    fn extract(&self, input: &[u8], seed: &[u8]) -> Vec<u8> {
        let n_bits = input.len() * 8;
        let l_bits = self.output_len * 8;
        assert!(
            seed.len() >= self.seed_len(input.len()),
            "ToeplitzExtractor seed too short: need {} bytes, got {}",
            self.seed_len(input.len()),
            seed.len()
        );

        let words = l_bits.div_ceil(64);
        let mut acc = vec![0u64; words];
        for (byte_idx, &byte) in input.iter().enumerate() {
            if byte == 0 {
                continue;
            }
            for bit in 0..8 {
                if (byte >> bit) & 1 == 1 {
                    let j = byte_idx * 8 + bit;
                    let window = Self::bit_window(seed, n_bits - 1 - j, l_bits);
                    for (a, w) in acc.iter_mut().zip(window.iter()) {
                        *a ^= w;
                    }
                }
            }
        }

        let mut out = vec![0u8; self.output_len];
        for (i, out_byte) in out.iter_mut().enumerate() {
            *out_byte = (acc[i / 8] >> ((i % 8) * 8)) as u8;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmac_extractor_deterministic_and_seed_sensitive() {
        let ext = HmacExtractor::new(32);
        let seed1 = [1u8; 32];
        let seed2 = [2u8; 32];
        let a = ext.extract(b"input", &seed1);
        let b = ext.extract(b"input", &seed1);
        let c = ext.extract(b"input", &seed2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hmac_extractor_long_output() {
        let ext = HmacExtractor::new(100);
        let out = ext.extract(b"x", &[0u8; 32]);
        assert_eq!(out.len(), 100);
    }

    #[test]
    #[should_panic(expected = "32-byte seed")]
    fn hmac_extractor_short_seed_panics() {
        HmacExtractor::new(32).extract(b"x", &[0u8; 16]);
    }

    #[test]
    fn toeplitz_linear_in_input() {
        // T(x ⊕ y) = T(x) ⊕ T(y): the extractor is GF(2)-linear.
        let ext = ToeplitzExtractor::new(8);
        let x = [0b1010_1100u8, 0xff, 0x01, 0x7e];
        let y = [0b0110_0011u8, 0x0f, 0x80, 0x55];
        let xy: Vec<u8> = x.iter().zip(y.iter()).map(|(a, b)| a ^ b).collect();
        let seed: Vec<u8> = (0..ext.seed_len(4)).map(|i| (i * 37 + 11) as u8).collect();
        let tx = ext.extract(&x, &seed);
        let ty = ext.extract(&y, &seed);
        let txy = ext.extract(&xy, &seed);
        let t_xor: Vec<u8> = tx.iter().zip(ty.iter()).map(|(a, b)| a ^ b).collect();
        assert_eq!(txy, t_xor);
    }

    #[test]
    fn toeplitz_zero_input_gives_zero() {
        let ext = ToeplitzExtractor::new(16);
        let seed = vec![0xffu8; ext.seed_len(10)];
        assert_eq!(ext.extract(&[0u8; 10], &seed), vec![0u8; 16]);
    }

    #[test]
    fn toeplitz_matches_naive_matrix_multiply() {
        let ext = ToeplitzExtractor::new(2); // ℓ = 16 bits
        let input = [0xc3u8, 0x5a, 0x99]; // n = 24 bits
        let n = 24;
        let l = 16;
        let seed: Vec<u8> = (0..ext.seed_len(3)).map(|i| (i * 151 + 3) as u8).collect();
        let seed_bit = |idx: usize| -> u8 { (seed[idx / 8] >> (idx % 8)) & 1 };
        let input_bit = |idx: usize| -> u8 { (input[idx / 8] >> (idx % 8)) & 1 };
        // T[i][j] = seed_bit(n - 1 + i - j); out_i = parity_j(T[i][j] & x_j).
        let mut expected = vec![0u8; 2];
        for i in 0..l {
            let mut parity = 0u8;
            for j in 0..n {
                parity ^= seed_bit(n - 1 + i - j) & input_bit(j);
            }
            expected[i / 8] |= parity << (i % 8);
        }
        assert_eq!(ext.extract(&input, &seed), expected);
    }

    #[test]
    fn toeplitz_seed_sensitivity() {
        let ext = ToeplitzExtractor::new(8);
        let input = [0x12u8, 0x34, 0x56, 0x78];
        let seed1 = vec![0x11u8; ext.seed_len(4)];
        let seed2 = vec![0x22u8; ext.seed_len(4)];
        assert_ne!(ext.extract(&input, &seed1), ext.extract(&input, &seed2));
    }

    #[test]
    fn seed_len_formula() {
        let ext = ToeplitzExtractor::new(32); // 256 output bits
                                              // n=100 bytes → 800 bits; seed bits = 800 + 256 - 1 = 1055 → 132 bytes.
        assert_eq!(ext.seed_len(100), 132);
        assert_eq!(HmacExtractor::new(32).seed_len(100), 32);
    }
}
