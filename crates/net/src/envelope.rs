//! Request and response envelopes: what rides inside a transport frame
//! after the handshake.
//!
//! ```text
//! request:   u64 BE request id | fe-protocol wire message ("FEID"…)
//! response:  u64 BE request id | u8 status | body
//!   status 0 (OK): body = u8 kind | kind-specific payload
//!     kind 0 EMPTY     —
//!     kind 1 CHALLENGE wire Message::Challenge bytes
//!     kind 2 OUTCOME   wire Message::Outcome bytes
//!     kind 3 USER_ID   u32 BE len | UTF-8 bytes
//!     kind 4 FLAG      u8 (0 | 1)
//!     kind 5 BATCH     u32 BE count | count × item
//!       item: u8 status | u32 BE len | payload
//!         status 0: payload = wire Message::Challenge bytes
//!         else:     payload = UTF-8 error detail (status = error code)
//!   status ≠ 0 (error): status is an [`ErrorCode`];
//!     body = u32 BE len | UTF-8 detail
//! ```
//!
//! Request ids are chosen by the client (monotonic per connection) and
//! echoed verbatim; the server answers every request **in arrival
//! order**, so ids exist to let a pipelining client pair responses with
//! requests, not to allow reordering. The request body *is* a
//! [`fe_protocol::wire`] message — the front door adds no second
//! payload format.
//!
//! Decoding distinguishes two failure severities: an envelope too short
//! to carry a request id is connection-fatal ([`NetError::BadFrame`] —
//! there is nothing to address an error response to), while a malformed
//! *message* behind a valid id is returned as data so the server can
//! answer with [`ErrorCode::Malformed`] and keep the connection.

use crate::error::{ErrorCode, NetError, WireError};
use fe_protocol::wire::{self, Message};
use fe_protocol::{IdentChallenge, IdentOutcome, ProtocolError, UserId};

const KIND_EMPTY: u8 = 0;
const KIND_CHALLENGE: u8 = 1;
const KIND_OUTCOME: u8 = 2;
const KIND_USER_ID: u8 = 3;
const KIND_FLAG: u8 = 4;
const KIND_BATCH: u8 = 5;

/// The success payload of a response, self-describing via its kind
/// byte. Which kind answers which request is part of the wire contract
/// (`PROTOCOL.md` § *Operations*).
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Acknowledgement with no data (enroll, enroll-unique, revoke).
    Empty,
    /// An identification challenge (identify).
    Challenge(IdentChallenge),
    /// A final identification outcome (finish/respond).
    Outcome(IdentOutcome),
    /// A matched user id (reset).
    UserId(UserId),
    /// A yes/no verdict (authenticate-claimed, check-local-uniqueness).
    Flag(bool),
    /// Per-probe results of a batched identify, position-aligned.
    Batch(Vec<Result<IdentChallenge, WireError>>),
}

/// A decoded response: the success body or the peer-reported error.
pub type Response = Result<ResponseBody, WireError>;

/// Encodes a request envelope.
pub fn encode_request(id: u64, msg: &Message) -> Vec<u8> {
    let body = wire::encode(msg);
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&id.to_be_bytes());
    buf.extend_from_slice(&body);
    buf
}

/// Decodes a request envelope into its id and message.
///
/// # Errors
/// [`NetError::BadFrame`] when the envelope cannot even carry an id
/// (connection-fatal). A malformed message behind a valid id comes back
/// as `Ok((id, Err(_)))` so the caller can respond with
/// [`ErrorCode::Malformed`].
pub fn decode_request(payload: &[u8]) -> Result<(u64, Result<Message, ProtocolError>), NetError> {
    if payload.len() < 8 {
        return Err(NetError::BadFrame("request envelope too short for an id"));
    }
    let id = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
    Ok((id, wire::decode(&payload[8..])))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_error(buf: &mut Vec<u8>, err: &WireError) {
    buf.push(err.code.as_u8());
    put_str(buf, &err.detail);
}

/// Encodes a response envelope.
pub fn encode_response(id: u64, response: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&id.to_be_bytes());
    match response {
        Ok(body) => {
            buf.push(0);
            match body {
                ResponseBody::Empty => buf.push(KIND_EMPTY),
                ResponseBody::Challenge(c) => {
                    buf.push(KIND_CHALLENGE);
                    buf.extend_from_slice(&wire::encode(&Message::Challenge(c.clone())));
                }
                ResponseBody::Outcome(o) => {
                    buf.push(KIND_OUTCOME);
                    buf.extend_from_slice(&wire::encode(&Message::Outcome(o.clone())));
                }
                ResponseBody::UserId(id) => {
                    buf.push(KIND_USER_ID);
                    put_str(&mut buf, id);
                }
                ResponseBody::Flag(v) => {
                    buf.push(KIND_FLAG);
                    buf.push(u8::from(*v));
                }
                ResponseBody::Batch(items) => {
                    buf.push(KIND_BATCH);
                    buf.extend_from_slice(&(items.len() as u32).to_be_bytes());
                    for item in items {
                        match item {
                            Ok(c) => {
                                buf.push(0);
                                let bytes = wire::encode(&Message::Challenge(c.clone()));
                                buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                                buf.extend_from_slice(&bytes);
                            }
                            Err(e) => put_error(&mut buf, e),
                        }
                    }
                }
            }
        }
        Err(e) => put_error(&mut buf, e),
    }
    buf
}

/// A cursor over a response body; every read is bounds-checked so a
/// hostile or truncated response can never panic the client.
struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.data.len() - self.pos < n {
            return Err(NetError::BadFrame("truncated response envelope"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, NetError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| NetError::BadFrame("response string not utf-8"))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.data[self.pos..];
        self.pos = self.data.len();
        out
    }

    fn end(&self) -> Result<(), NetError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(NetError::BadFrame("trailing bytes in response envelope"))
        }
    }
}

fn decode_challenge(bytes: &[u8]) -> Result<IdentChallenge, NetError> {
    match wire::decode(bytes).map_err(NetError::Protocol)? {
        Message::Challenge(c) => Ok(c),
        _ => Err(NetError::UnexpectedResponse("challenge payload expected")),
    }
}

fn take_error(cur: &mut Cur<'_>, status: u8) -> Result<WireError, NetError> {
    let code = ErrorCode::from_u8(status).ok_or(NetError::BadFrame("unknown error code"))?;
    let detail = cur.str()?;
    Ok(WireError { code, detail })
}

/// Decodes a response envelope into its id and [`Response`].
///
/// # Errors
/// [`NetError::BadFrame`] on any structural violation (all reads are
/// bounds-checked; trailing bytes are rejected);
/// [`NetError::Protocol`] when an embedded wire message fails to
/// decode.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), NetError> {
    let mut cur = Cur {
        data: payload,
        pos: 0,
    };
    let id = u64::from_be_bytes(cur.take(8)?.try_into().expect("8 bytes"));
    let status = cur.u8()?;
    if status != 0 {
        let err = take_error(&mut cur, status)?;
        cur.end()?;
        return Ok((id, Err(err)));
    }
    let body = match cur.u8()? {
        KIND_EMPTY => ResponseBody::Empty,
        KIND_CHALLENGE => ResponseBody::Challenge(decode_challenge(cur.rest())?),
        KIND_OUTCOME => match wire::decode(cur.rest()).map_err(NetError::Protocol)? {
            Message::Outcome(o) => ResponseBody::Outcome(o),
            _ => return Err(NetError::UnexpectedResponse("outcome payload expected")),
        },
        KIND_USER_ID => ResponseBody::UserId(cur.str()?),
        KIND_FLAG => match cur.u8()? {
            0 => ResponseBody::Flag(false),
            1 => ResponseBody::Flag(true),
            _ => return Err(NetError::BadFrame("bad flag byte")),
        },
        KIND_BATCH => {
            let count = cur.u32()? as usize;
            // Prealloc capped by the bytes actually present (5 bytes is
            // the smallest possible item).
            let mut items = Vec::with_capacity(count.min(payload.len() / 5));
            for _ in 0..count {
                let status = cur.u8()?;
                if status == 0 {
                    let len = cur.u32()? as usize;
                    items.push(Ok(decode_challenge(cur.take(len)?)?));
                } else {
                    items.push(Err(take_error(&mut cur, status)?));
                }
            }
            ResponseBody::Batch(items)
        }
        _ => return Err(NetError::BadFrame("unknown response kind")),
    };
    cur.end()?;
    Ok((id, Ok(body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_protocol::{BiometricDevice, SystemParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_challenge() -> IdentChallenge {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let bio = params.sketch().line().random_vector(16, &mut rng);
        let record = device.enroll("envelope-user", &bio, &mut rng).unwrap();
        IdentChallenge {
            session: 42,
            helper: record.helper,
            challenge: 7,
        }
    }

    #[test]
    fn request_roundtrip() {
        let msg = Message::Identify {
            probe: vec![1, -5, 300],
        };
        let (id, got) = decode_request(&encode_request(77, &msg)).unwrap();
        assert_eq!(id, 77);
        assert_eq!(got.unwrap(), msg);
    }

    #[test]
    fn short_request_envelope_is_fatal() {
        for len in 0..8 {
            assert!(matches!(
                decode_request(&vec![0u8; len]).unwrap_err(),
                NetError::BadFrame(_)
            ));
        }
    }

    #[test]
    fn malformed_message_behind_valid_id_is_answerable() {
        let mut payload = 9u64.to_be_bytes().to_vec();
        payload.extend_from_slice(b"not a wire message");
        let (id, msg) = decode_request(&payload).unwrap();
        assert_eq!(id, 9);
        assert!(msg.is_err());
    }

    #[test]
    fn every_response_body_roundtrips() {
        let chal = sample_challenge();
        let bodies = vec![
            ResponseBody::Empty,
            ResponseBody::Challenge(chal.clone()),
            ResponseBody::Outcome(IdentOutcome::Identified("alice".into())),
            ResponseBody::Outcome(IdentOutcome::Rejected),
            ResponseBody::UserId("reset-winner".into()),
            ResponseBody::Flag(true),
            ResponseBody::Flag(false),
            ResponseBody::Batch(vec![
                Ok(chal.clone()),
                Err(WireError {
                    code: ErrorCode::NoMatch,
                    detail: "no enrolled record".into(),
                }),
                Err(WireError {
                    code: ErrorCode::Overloaded,
                    detail: String::new(),
                }),
            ]),
            ResponseBody::Batch(Vec::new()),
        ];
        for body in bodies {
            let response: Response = Ok(body);
            let bytes = encode_response(123_456, &response);
            let (id, got) = decode_response(&bytes).unwrap();
            assert_eq!(id, 123_456);
            assert_eq!(got, response);
        }
    }

    #[test]
    fn error_response_roundtrips() {
        let response: Response = Err(WireError {
            code: ErrorCode::Overloaded,
            detail: "server overloaded: identification request shed".into(),
        });
        let bytes = encode_response(u64::MAX, &response);
        let (id, got) = decode_response(&bytes).unwrap();
        assert_eq!(id, u64::MAX);
        assert_eq!(got, response);
    }

    #[test]
    fn truncated_responses_fail_cleanly() {
        let chal = sample_challenge();
        for response in [
            Ok(ResponseBody::Batch(vec![Ok(chal)])),
            Ok(ResponseBody::UserId("u".into())),
            Err(WireError {
                code: ErrorCode::NoMatch,
                detail: "d".into(),
            }),
        ] {
            let bytes = encode_response(1, &response);
            for cut in 0..bytes.len() {
                assert!(
                    decode_response(&bytes[..cut]).is_err(),
                    "prefix {cut} accepted"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_response(1, &Ok(ResponseBody::Empty));
        bytes.push(0);
        assert!(matches!(
            decode_response(&bytes).unwrap_err(),
            NetError::BadFrame("trailing bytes in response envelope")
        ));
    }

    #[test]
    fn unknown_codes_and_kinds_rejected() {
        // Unknown error code.
        let mut bytes = 1u64.to_be_bytes().to_vec();
        bytes.push(200); // not a registered code
        bytes.extend_from_slice(&0u32.to_be_bytes());
        assert!(decode_response(&bytes).is_err());
        // Unknown OK kind.
        let mut bytes = 1u64.to_be_bytes().to_vec();
        bytes.push(0);
        bytes.push(99);
        assert!(decode_response(&bytes).is_err());
    }
}
