//! **Churn latency (PR 8 acceptance)**: identification reads must not
//! block on enrollment churn.
//!
//! The epoch read path's whole point is that a `find_first` sweep never
//! takes the shard lock — so a worst-case lookup (a full-population
//! miss) should cost about the same whether the writer is idle or
//! mid-storm. This bench measures exactly that, on a single-shard
//! `SharedServer<EpochIndex>` (one shard = every write lands on the
//! shard the reads sweep, the worst case for a lock-based design):
//!
//! * **quiescent** — per-call latency of `begin_identification` with a
//!   no-match probe (one full sweep, no session mutation) against an
//!   idle server; p50/p99 over a few hundred samples.
//! * **churn** — the same calls while a writer thread runs an open-loop
//!   enroll/revoke storm (with periodic `maintain`-triggering
//!   revocation bursts) as fast as the box allows.
//!
//! Both pairs land in `BENCH_SMOKE.json` (`quiescent_lookup_us_p50`/
//! `_p99`, `churn_lookup_us_p50`/`_p99`, plus `churn_writer_ops` for
//! context). With `FE_BENCH_GATE` set the run **fails** if the churn
//! p99 exceeds 1.5× the quiescent p99 — the PR's acceptance bound. On
//! a 1-CPU box the reader and writer time-slice one core, so the gate
//! relaxes to wall-clock-fairness only there (`hw_threads` is recorded
//! so the smoke artifact says which regime measured).

use criterion::{criterion_group, criterion_main, Criterion};
use fe_bench::{smoke, SynthPopulation};
use fe_core::EpochIndex;
use fe_metrics::telemetry::percentile;
use fe_protocol::concurrent::SharedServer;
use fe_protocol::{ProtocolError, SystemParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const DIM: usize = 64;

/// Samples `count` individual worst-case (no-match) identification
/// calls and returns sorted per-call latencies in seconds.
fn sample_lookups(
    server: &SharedServer<EpochIndex>,
    miss: &[i64],
    count: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut lat = Vec::with_capacity(count);
    for _ in 0..count {
        let start = Instant::now();
        let out = server.begin_identification(miss, rng);
        lat.push(start.elapsed().as_secs_f64());
        assert!(matches!(out, Err(ProtocolError::NoMatch)));
    }
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lat
}

fn bench_churn_latency(c: &mut Criterion) {
    let smoke_run = smoke::smoke_mode();
    let population = if smoke_run { 20_000 } else { 100_000 };
    let samples = if smoke_run { 300 } else { 1_000 };

    let params = SystemParams::insecure_test_defaults();
    let mut rng = StdRng::seed_from_u64(0xC4C4);
    let pop = SynthPopulation::build(&params, population, DIM, &mut rng);
    // The churn pool: records the storm enrolls and immediately
    // revokes, so the live population (and the sweep length) stays
    // fixed while the segment lists and tombstone words keep moving.
    let churn_pool = SynthPopulation::build(&params, 2_000, DIM, &mut rng);

    let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 1);
    for record in &pop.records {
        server.enroll(record.clone()).unwrap();
    }
    // A guaranteed miss: full sweep, no match, no session state.
    let miss = loop {
        let candidate = pop.genuine_probe(&params, 0, &mut rng);
        let shifted: Vec<i64> = candidate.iter().map(|&x| x + 77).collect();
        if server.begin_identification(&shifted, &mut rng) == Err(ProtocolError::NoMatch) {
            break shifted;
        }
    };

    let mut group = c.benchmark_group("churn_latency");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 3 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 500 }));
    group.bench_function("lookup/quiescent", |b| {
        b.iter(|| {
            server
                .begin_identification(std::hint::black_box(&miss), &mut rng)
                .unwrap_err()
        })
    });
    group.finish();

    // Quiescent baseline, best-measured right before the storm so both
    // phases share one measurement neighborhood.
    let quiescent = sample_lookups(&server, &miss, samples, &mut rng);

    // Open-loop enroll storm: the writer enrolls + revokes churn
    // records as fast as it can, never pacing itself on the readers.
    let stop = AtomicBool::new(false);
    let writer_ops = AtomicUsize::new(0);
    let mut churn = Vec::new();
    std::thread::scope(|scope| {
        let server_ref = &server;
        let (stop_ref, ops_ref, churn_ref) = (&stop, &writer_ops, &churn_pool);
        scope.spawn(move || {
            let mut round = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let record = &churn_ref.records[round % churn_ref.records.len()];
                let mut record = record.clone();
                record.id = format!("churn-{round}");
                server_ref.enroll(record).unwrap();
                server_ref.revoke(&format!("churn-{round}")).unwrap();
                ops_ref.fetch_add(2, Ordering::Relaxed);
                round += 1;
            }
        });
        churn = sample_lookups(&server, &miss, samples, &mut rng);
        stop.store(true, Ordering::Relaxed);
    });

    let q_p50 = percentile(&quiescent, 0.50);
    let q_p99 = percentile(&quiescent, 0.99);
    let c_p50 = percentile(&churn, 0.50);
    let c_p99 = percentile(&churn, 0.99);
    let ops = writer_ops.load(Ordering::Relaxed);
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "churn_latency/{population}: quiescent p50 {:.1} µs p99 {:.1} µs; \
         under churn p50 {:.1} µs p99 {:.1} µs ({ops} writer ops, {hw_threads} hw threads)",
        q_p50 * 1e6,
        q_p99 * 1e6,
        c_p50 * 1e6,
        c_p99 * 1e6,
    );
    smoke::record(
        "churn_latency",
        &[
            ("quiescent_lookup_us_p50", q_p50 * 1e6),
            ("quiescent_lookup_us_p99", q_p99 * 1e6),
            ("churn_lookup_us_p50", c_p50 * 1e6),
            ("churn_lookup_us_p99", c_p99 * 1e6),
            ("churn_writer_ops", ops as f64),
            ("hw_threads", hw_threads as f64),
        ],
    );

    if std::env::var_os("FE_BENCH_GATE").is_some() {
        // The acceptance bound. On a 1-CPU box reader and writer
        // time-slice a single core, so every read eats scheduling
        // delay no lock-free design can remove — there the bound only
        // has to hold against the *median* churn sample (the scheduler
        // noise lives in the tail), still enough to catch a read path
        // that started blocking on the shard lock.
        let (label, churn_stat) = if hw_threads > 1 {
            ("p99", c_p99)
        } else {
            ("p50", c_p50)
        };
        assert!(
            churn_stat <= q_p99 * 1.5,
            "FE_BENCH_GATE: churn lookup {label} ({:.1} µs) exceeds 1.5× quiescent p99 \
             ({:.1} µs) — the read path is blocking on enrollment churn",
            churn_stat * 1e6,
            q_p99 * 1e6,
        );
    }
}

criterion_group!(benches, bench_churn_latency);
criterion_main!(benches);
