//! The blocking client: one TCP connection, synchronous
//! request/response calls mirroring the server op surface.
//!
//! [`Client`] is deliberately the *simple* consumer of the protocol —
//! one request in flight at a time, strict response-id checking. The
//! protocol itself allows pipelining (ids exist so responses can be
//! paired up); the loopback load generator in `fe-bench` drives split
//! sockets directly through [`crate::envelope`] for that.

use crate::envelope::{self, ResponseBody};
use crate::error::{NetError, WireError};
use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use crate::handshake::client_handshake;
use fe_core::codec::Fingerprint;
use fe_protocol::wire::Message;
use fe_protocol::{
    EnrollmentRecord, IdentChallenge, IdentOutcome, IdentResponse, SystemParams, UserId,
};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected, handshaken client.
///
/// Every call sends one request frame and blocks for its response;
/// remote errors come back as [`NetError::Remote`] carrying the wire
/// [`ErrorCode`](crate::ErrorCode) — `OVERLOADED` in particular is how
/// server-side load shedding reaches the caller.
///
/// ```rust
/// use fe_net::{Client, NetConfig, NetServer};
/// use fe_protocol::scheduler::{ScheduledServer, SchedulerConfig};
/// use fe_protocol::{BiometricDevice, SystemParams};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = SystemParams::insecure_test_defaults();
/// let (server, _scheduler) = NetServer::scan(
///     params.clone(),
///     1,
///     SchedulerConfig { rng_seed: 7, ..SchedulerConfig::default() },
///     "127.0.0.1:0",
///     NetConfig::default(),
/// )?;
///
/// // Client side: a device enrolls, then identifies itself.
/// let device = BiometricDevice::new(params.clone());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let bio = params.sketch().line().random_vector(16, &mut rng);
///
/// let mut client = Client::connect(server.local_addr(), &params)?;
/// client.enroll(device.enroll("alice", &bio, &mut rng)?)?;
///
/// let probe = device.probe_sketch(&bio, &mut rng)?;
/// let challenge = client.identify(probe)?;
/// let response = device.respond(&bio, &challenge, &mut rng)?;
/// let outcome = client.finish_identification(&response)?;
/// assert_eq!(outcome.identity(), Some("alice"));
///
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    next_id: u64,
}

impl Client {
    /// Connects and handshakes under `params` with the default frame
    /// limit ([`DEFAULT_MAX_FRAME`]).
    ///
    /// # Errors
    /// IO errors; [`NetError::VersionMismatch`] /
    /// [`NetError::FingerprintMismatch`] when the server rejects the
    /// hello.
    pub fn connect<A: ToSocketAddrs>(addr: A, params: &SystemParams) -> Result<Client, NetError> {
        Client::connect_with(addr, params.fingerprint(), DEFAULT_MAX_FRAME)
    }

    /// Connects with an explicit fingerprint and frame limit (both must
    /// match the server's).
    ///
    /// # Errors
    /// Same as [`Client::connect`].
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        fingerprint: Fingerprint,
        max_frame: usize,
    ) -> Result<Client, NetError> {
        let mut stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        client_handshake(&mut stream, &fingerprint, max_frame)?;
        Ok(Client {
            stream,
            max_frame,
            next_id: 0,
        })
    }

    /// One synchronous round trip: send `msg`, await the response with
    /// the matching id, surface remote errors.
    fn call(&mut self, msg: &Message) -> Result<ResponseBody, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = envelope::encode_request(id, msg);
        write_frame(&mut self.stream, &request, self.max_frame)?;
        let payload = read_frame(&mut self.stream, self.max_frame)?;
        let (got_id, response) = envelope::decode_response(&payload)?;
        if got_id != id {
            return Err(NetError::Desync {
                expected: id,
                found: got_id,
            });
        }
        response.map_err(NetError::Remote)
    }

    /// Identification phase 1: returns the server's challenge for the
    /// matched record.
    ///
    /// # Errors
    /// [`NetError::Remote`] with `NO_MATCH` when nobody matches,
    /// `OVERLOADED` when the request was shed.
    pub fn identify(&mut self, probe: Vec<i64>) -> Result<IdentChallenge, NetError> {
        match self.call(&Message::Identify { probe })? {
            ResponseBody::Challenge(c) => Ok(c),
            _ => Err(NetError::UnexpectedResponse("identify expects a challenge")),
        }
    }

    /// Batched identification phase 1: one request frame, one response
    /// frame, per-probe verdicts position-aligned with `probes`.
    /// Per-probe failures (including `OVERLOADED` sheds) come back in
    /// their slots, not as a call-level error.
    ///
    /// # Errors
    /// Transport and envelope errors only.
    pub fn identify_batch(
        &mut self,
        probes: Vec<Vec<i64>>,
    ) -> Result<Vec<Result<IdentChallenge, WireError>>, NetError> {
        match self.call(&Message::IdentifyBatch { probes })? {
            ResponseBody::Batch(items) => Ok(items),
            _ => Err(NetError::UnexpectedResponse("batch expects a batch body")),
        }
    }

    /// Identification phase 2: submit the signed challenge response.
    ///
    /// # Errors
    /// [`NetError::Remote`] with `UNKNOWN_SESSION` / `BAD_SIGNATURE` on
    /// a stale session or failed verification.
    pub fn finish_identification(
        &mut self,
        response: &IdentResponse,
    ) -> Result<IdentOutcome, NetError> {
        match self.call(&Message::Response(response.clone()))? {
            ResponseBody::Outcome(o) => Ok(o),
            _ => Err(NetError::UnexpectedResponse("finish expects an outcome")),
        }
    }

    /// Enrolls a record (no uniqueness sweep).
    ///
    /// # Errors
    /// [`NetError::Remote`] with `DUPLICATE_USER` when the id is taken.
    pub fn enroll(&mut self, record: EnrollmentRecord) -> Result<(), NetError> {
        self.expect_empty(&Message::Enroll(record))
    }

    /// Uniqueness-checked enrollment.
    ///
    /// # Errors
    /// [`NetError::Remote`] with `DUPLICATE_BIOMETRIC` when the sketch
    /// already matches an enrolled record, `DUPLICATE_USER` for a taken
    /// id.
    pub fn enroll_unique(&mut self, record: EnrollmentRecord) -> Result<(), NetError> {
        self.expect_empty(&Message::EnrollUnique(record))
    }

    /// Revokes an enrollment by user id.
    ///
    /// # Errors
    /// [`NetError::Remote`] with `UNKNOWN_USER` when no such user.
    pub fn revoke(&mut self, id: &str) -> Result<(), NetError> {
        self.expect_empty(&Message::Revoke { id: id.to_owned() })
    }

    /// Reset / account recovery: succeeds only when *exactly one*
    /// record matches, returning that user id.
    ///
    /// # Errors
    /// [`NetError::Remote`] with `NO_MATCH` or `AMBIGUOUS_MATCH`.
    pub fn reset(&mut self, probe: Vec<i64>) -> Result<UserId, NetError> {
        match self.call(&Message::Reset { probe })? {
            ResponseBody::UserId(id) => Ok(id),
            _ => Err(NetError::UnexpectedResponse("reset expects a user id")),
        }
    }

    /// Targeted claimed-identity check: does `probe` match the record
    /// enrolled under `id`?
    ///
    /// # Errors
    /// [`NetError::Remote`] with `UNKNOWN_USER` when `id` is not
    /// enrolled.
    pub fn authenticate_claimed(&mut self, id: &str, probe: Vec<i64>) -> Result<bool, NetError> {
        match self.call(&Message::AuthenticateClaimed {
            id: id.to_owned(),
            probe,
        })? {
            ResponseBody::Flag(v) => Ok(v),
            _ => Err(NetError::UnexpectedResponse("expected a flag")),
        }
    }

    /// Subset uniqueness check: is `probe` distinct from every record in
    /// `ids`?
    ///
    /// # Errors
    /// [`NetError::Remote`] with `UNKNOWN_USER` when a listed id is not
    /// enrolled.
    pub fn check_local_uniqueness(
        &mut self,
        probe: Vec<i64>,
        ids: Vec<UserId>,
    ) -> Result<bool, NetError> {
        match self.call(&Message::CheckLocalUniqueness { probe, ids })? {
            ResponseBody::Flag(v) => Ok(v),
            _ => Err(NetError::UnexpectedResponse("expected a flag")),
        }
    }

    fn expect_empty(&mut self, msg: &Message) -> Result<(), NetError> {
        match self.call(msg)? {
            ResponseBody::Empty => Ok(()),
            _ => Err(NetError::UnexpectedResponse("expected an empty ack")),
        }
    }
}
