//! **Ablation C (ours)**: the cryptographic building blocks.
//!
//! * Signature scheme: DSA (the paper's choice) vs Schnorr over the same
//!   subgroup — Schnorr saves the modular inversion on the signing path.
//! * Strong extractor: HMAC-SHA-256 (the paper's "SHA256") vs the
//!   2-universal Toeplitz extractor — the provable choice costs more on
//!   large inputs.
//! * DSA group size: 512 (test) vs 1024 (paper-era default).

use criterion::{criterion_group, criterion_main, Criterion};
use fe_crypto::dsa::{Dsa, DsaParams};
use fe_crypto::extractor::{HmacExtractor, StrongExtractor, ToeplitzExtractor};
use fe_crypto::schnorr::Schnorr;
use fe_crypto::sig::SignatureScheme;
use std::time::Duration;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_crypto");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    let msg = b"challenge-c||nonce-a";

    // --- Signatures, 1024-bit group ---
    let dsa = Dsa::new(DsaParams::dsa_1024_160().clone());
    let (dsk, dvk) = dsa.keypair_from_seed(b"R");
    group.bench_function("dsa1024_sign", |b| {
        b.iter(|| dsa.sign(&dsk, std::hint::black_box(msg)))
    });
    let sig = dsa.sign(&dsk, msg);
    group.bench_function("dsa1024_verify", |b| {
        b.iter(|| assert!(dsa.verify(&dvk, std::hint::black_box(msg), &sig)))
    });

    let schnorr = Schnorr::new(DsaParams::dsa_1024_160().clone());
    let (ssk, svk) = schnorr.keypair_from_seed(b"R");
    group.bench_function("schnorr1024_sign", |b| {
        b.iter(|| schnorr.sign(&ssk, std::hint::black_box(msg)))
    });
    let ssig = schnorr.sign(&ssk, msg);
    group.bench_function("schnorr1024_verify", |b| {
        b.iter(|| assert!(schnorr.verify(&svk, std::hint::black_box(msg), &ssig)))
    });

    // --- Signatures, 512-bit (test) group, for the size axis ---
    let dsa512 = Dsa::new(DsaParams::insecure_512().clone());
    let (dsk512, _dvk512) = dsa512.keypair_from_seed(b"R");
    group.bench_function("dsa512_sign", |b| {
        b.iter(|| dsa512.sign(&dsk512, std::hint::black_box(msg)))
    });

    // --- Extractors over a 5000-coordinate (40 KB) encoded biometric ---
    let input = vec![0xa5u8; 5000 * 8];
    let hmac_ext = HmacExtractor::new(32);
    let hmac_seed = vec![7u8; hmac_ext.seed_len(input.len())];
    group.bench_function("extractor_hmac_40KB", |b| {
        b.iter(|| hmac_ext.extract(std::hint::black_box(&input), &hmac_seed))
    });

    let toeplitz = ToeplitzExtractor::new(32);
    let toeplitz_seed = vec![0x3cu8; toeplitz.seed_len(input.len())];
    group.bench_function("extractor_toeplitz_40KB", |b| {
        b.iter(|| toeplitz.extract(std::hint::black_box(&input), &toeplitz_seed))
    });
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
