//! Arbitrary-precision integer arithmetic for the `fuzzy-id` workspace.
//!
//! This crate is a self-contained bignum substrate built for the DSA/Schnorr
//! signatures used by the biometric identification protocol of *Fuzzy
//! Extractors for Biometric Identification* (ICDCS 2017). It provides:
//!
//! * [`Natural`] — an unsigned arbitrary-precision integer on 64-bit limbs
//!   with schoolbook + Karatsuba multiplication, Knuth Algorithm D division,
//!   and bit-level operations.
//! * [`Integer`] — a signed wrapper used by the extended Euclidean algorithm.
//! * Modular arithmetic: [`Natural::mod_pow`], [`Natural::mod_inv`],
//!   [`Natural::mod_mul`], with a Montgomery (CIOS) fast path for odd moduli
//!   (see [`montgomery::Montgomery`]).
//! * Primality testing (Miller–Rabin with trial division) and random prime
//!   generation driven by any [`rand::RngCore`].
//!
//! # Example
//!
//! ```rust
//! use fe_bigint::Natural;
//!
//! # fn main() -> Result<(), fe_bigint::ParseNaturalError> {
//! let p = Natural::from_hex("ffffffffffffffc5")?; // a 64-bit prime
//! let g = Natural::from(3u64);
//! let x = Natural::from(123_456_789u64);
//! let y = g.mod_pow(&x, &p);
//! assert!(y < p);
//! # Ok(())
//! # }
//! ```
//!
//! The crate is `#![forbid(unsafe_code)]`; performance comes from limb-level
//! `u128` arithmetic, not intrinsics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod bits;
mod convert;
mod div;
mod error;
mod integer;
mod modular;
pub mod montgomery;
mod natural;
mod prime;
mod rand_util;

pub use error::ParseNaturalError;
pub use integer::{Integer, Sign};
pub use natural::Natural;
pub use prime::gen_prime;
pub use rand_util::{random_below, random_bits, random_natural};

/// Extended GCD result: `g = gcd(a, b)` together with Bézout coefficients
/// `x`, `y` such that `a*x + b*y = g`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedGcd {
    /// Greatest common divisor of the two inputs.
    pub gcd: Natural,
    /// Coefficient of the first input.
    pub x: Integer,
    /// Coefficient of the second input.
    pub y: Integer,
}
