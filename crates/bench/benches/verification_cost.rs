//! **Sec. VII text**: "one protocol execution for user verification needs
//! 99 milliseconds (n = 5000)" and "the identification time is around 110
//! milliseconds which is close to the speed in verification mode".
//!
//! This bench times one full verification-mode run and one full proposed
//! identification run at n = 5000 so the ratio (≈1.1 in the paper) can be
//! compared. Absolute numbers are hardware/language-dependent.

use criterion::{criterion_group, criterion_main, Criterion};
use fe_bench::Population;
use fe_protocol::SystemParams;
use std::time::Duration;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification_cost");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    let users = 10usize;
    let params = SystemParams::insecure_test_defaults();
    let mut pop = Population::build(params, users, 5000, 0x99_5000);
    let reading = pop.genuine_reading(7);

    group.bench_function("verification_n5000", |b| {
        b.iter(|| {
            let (outcome, _) = pop
                .runner
                .verify("user-7", std::hint::black_box(&reading), &mut pop.rng)
                .expect("verified");
            assert!(outcome.is_identified());
        })
    });

    group.bench_function("identification_n5000", |b| {
        b.iter(|| {
            let (outcome, _) = pop
                .runner
                .identify(std::hint::black_box(&reading), &mut pop.rng)
                .expect("identified");
            assert!(outcome.is_identified());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
