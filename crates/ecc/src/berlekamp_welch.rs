//! Berlekamp–Welch decoding: polynomial reconstruction from noisy point
//! evaluations at *arbitrary* support points — exactly what the fuzzy
//! vault needs, where the support is whatever subset of vault points the
//! user's feature set unlocked.

use crate::linalg::solve_linear_system;
use crate::poly::Poly;
use crate::{CodeError, Gf2m};

/// Reconstructs a polynomial of degree `< k` from `points = (x_i, y_i)`,
/// of which at most `⌊(N - k) / 2⌋` may be wrong (`N = points.len()`).
///
/// The classic rational-interpolation formulation: find an error locator
/// `E(x)` (monic, degree `e`) and `Q(x)` (degree `< k + e`) with
/// `Q(x_i) = y_i · E(x_i)` for all `i`; then `P = Q / E`.
///
/// # Errors
/// [`CodeError::BadParameters`] if fewer than `k` points are supplied or
/// `x` values repeat; [`CodeError::TooManyErrors`] if no consistent
/// polynomial exists within the error budget.
///
/// ```rust
/// use fe_ecc::{berlekamp_welch, Gf2m, Poly};
///
/// # fn main() -> Result<(), fe_ecc::CodeError> {
/// let f = Gf2m::new(8)?;
/// let secret = Poly::from_coeffs(vec![7, 3, 1]); // degree 2, k = 3
/// let mut pts: Vec<(u16, u16)> = (1..=9).map(|x| (x, secret.eval(x, &f))).collect();
/// pts[2].1 ^= 0x41; // corrupt two evaluations
/// pts[6].1 ^= 0x0f;
/// let recovered = berlekamp_welch(&f, &pts, 3)?;
/// assert_eq!(recovered, secret);
/// # Ok(())
/// # }
/// ```
pub fn berlekamp_welch(f: &Gf2m, points: &[(u16, u16)], k: usize) -> Result<Poly, CodeError> {
    let n = points.len();
    if k == 0 || n < k {
        return Err(CodeError::BadParameters);
    }
    // Distinct x values are required.
    {
        let mut xs: Vec<u16> = points.iter().map(|p| p.0).collect();
        xs.sort_unstable();
        if xs.windows(2).any(|w| w[0] == w[1]) {
            return Err(CodeError::BadParameters);
        }
    }

    let e_max = (n - k) / 2;
    // Try the largest error budget first: a solution found with budget e
    // also exists for any larger budget, and larger budgets have more
    // unknowns (always solvable when a valid decoding exists).
    for e in (0..=e_max).rev() {
        // Unknowns: q_0..q_{k+e-1} (k+e of them), e_0..e_{e-1} (e of them;
        // E is monic of degree e). Equations, one per point:
        //   Σ_j q_j x^j  +  y_i · Σ_j e_j x^j  =  y_i · x^e
        let unknowns = k + 2 * e;
        let mut rows = Vec::with_capacity(n);
        for &(x, y) in points {
            let mut row = Vec::with_capacity(unknowns + 1);
            let mut xp = 1u16;
            for _ in 0..(k + e) {
                row.push(xp);
                xp = f.mul(xp, x);
            }
            let mut xp = 1u16;
            for _ in 0..e {
                row.push(f.mul(y, xp));
                xp = f.mul(xp, x);
            }
            // RHS: y · x^e   (note: in char 2, -a = a).
            row.push(f.mul(y, f.pow(x, e as i64)));
            rows.push(row);
        }
        let Some(sol) = solve_linear_system(f, rows) else {
            continue;
        };
        let q = Poly::from_coeffs(sol[..k + e].to_vec());
        let mut e_coeffs = sol[k + e..].to_vec();
        e_coeffs.push(1); // monic x^e term
        let e_poly = Poly::from_coeffs(e_coeffs);
        if e_poly.is_zero() {
            continue;
        }
        let (p, rem) = q.div_rem(&e_poly, f);
        if !rem.is_zero() {
            continue;
        }
        if p.degree().is_some_and(|d| d >= k) {
            continue;
        }
        // Accept only if at most e points disagree with p.
        let disagreements = points.iter().filter(|&&(x, y)| p.eval(x, f) != y).count();
        if disagreements <= e {
            return Ok(p);
        }
    }
    Err(CodeError::TooManyErrors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn field() -> Gf2m {
        Gf2m::new(8).unwrap()
    }

    #[test]
    fn clean_points_interpolate() {
        let f = field();
        let p = Poly::from_coeffs(vec![1, 2, 3]);
        let pts: Vec<(u16, u16)> = (1..=5).map(|x| (x, p.eval(x, &f))).collect();
        assert_eq!(berlekamp_welch(&f, &pts, 3).unwrap(), p);
    }

    #[test]
    fn corrects_errors_up_to_budget() {
        let f = field();
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..20 {
            let k = rng.gen_range(2..6usize);
            let coeffs: Vec<u16> = (0..k).map(|_| rng.gen_range(0..256)).collect();
            let p = Poly::from_coeffs(coeffs);
            let n = k + 8; // budget e_max = 4
            let mut pts: Vec<(u16, u16)> = (1..=n as u16).map(|x| (x, p.eval(x, &f))).collect();
            let e = rng.gen_range(0..=4usize);
            let mut bad = std::collections::HashSet::new();
            while bad.len() < e {
                bad.insert(rng.gen_range(0..n));
            }
            for &i in &bad {
                pts[i].1 ^= rng.gen_range(1..256) as u16;
            }
            let got = berlekamp_welch(&f, &pts, k).unwrap();
            // Compare as polynomials of degree < k (both trimmed).
            assert_eq!(got, p, "trial {trial} k={k} e={e}");
        }
    }

    #[test]
    fn too_many_errors_fails() {
        let f = field();
        let p = Poly::from_coeffs(vec![5, 6]);
        // k=2, n=6 → e_max = 2; corrupt 3 points in a way that does not
        // form another consistent line.
        let mut pts: Vec<(u16, u16)> = (1..=6).map(|x| (x, p.eval(x, &f))).collect();
        pts[0].1 ^= 1;
        pts[2].1 ^= 7;
        pts[4].1 ^= 9;
        match berlekamp_welch(&f, &pts, 2) {
            Err(CodeError::TooManyErrors) => {}
            Ok(other) => assert_ne!(other, p, "impossible: 3 errors with budget 2 recovered p"),
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn duplicate_x_rejected() {
        let f = field();
        let pts = [(1u16, 2u16), (1, 3), (2, 4)];
        assert_eq!(berlekamp_welch(&f, &pts, 2), Err(CodeError::BadParameters));
    }

    #[test]
    fn too_few_points_rejected() {
        let f = field();
        let pts = [(1u16, 2u16)];
        assert_eq!(berlekamp_welch(&f, &pts, 2), Err(CodeError::BadParameters));
    }

    #[test]
    fn arbitrary_support_works() {
        // The support need not be consecutive powers — the fuzzy vault
        // property.
        let f = field();
        let p = Poly::from_coeffs(vec![100, 50, 25]);
        let xs = [3u16, 17, 40, 99, 150, 200, 251];
        let mut pts: Vec<(u16, u16)> = xs.iter().map(|&x| (x, p.eval(x, &f))).collect();
        pts[1].1 ^= 0x33;
        pts[5].1 ^= 0x44;
        assert_eq!(berlekamp_welch(&f, &pts, 3).unwrap(), p);
    }
}
