//! The fuzzy extractor `Gen`/`Rep` (Definition 2 + the generic
//! construction of Sec. II-A/IV-C): secure sketch + strong extractor.

use crate::chebyshev::ChebyshevSketch;
use crate::encode::encode_i64_vector;
use crate::key::ExtractedKey;
use crate::robust::{RobustSketch, SketchBytes};
use crate::sketch::SecureSketch;
use crate::SketchError;
use fe_crypto::extractor::{HmacExtractor, StrongExtractor};
use fe_crypto::{Digest, Sha256};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Public helper data `P = (s, r)`: the sketch plus the extractor seed
/// (Sec. IV-C `Gen`).
///
/// Publishing `P` leaks at most the sketch's entropy loss (Theorem 3);
/// the extracted key stays statistically close to uniform given `P`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelperData<S> {
    /// The (robust) sketch `s`.
    pub sketch: S,
    /// The strong-extractor seed `r`.
    pub seed: Vec<u8>,
}

/// A fuzzy extractor built from a secure sketch and a strong extractor.
///
/// `Gen(x)` returns `(R, P)`; `Rep(y, P)` reproduces `R` whenever `y` is
/// within the sketch's acceptance distance of `x`.
///
/// The [`crate::DefaultFuzzyExtractor`] alias instantiates this with the
/// paper's stack (Chebyshev sketch, SHA-256 robust tag, HMAC-SHA-256
/// extractor); [`FuzzyExtractor::with_defaults`] is the convenient
/// constructor.
#[derive(Debug, Clone)]
pub struct FuzzyExtractor<S, E> {
    sketcher: S,
    extractor: E,
}

impl<S, E> FuzzyExtractor<S, E>
where
    S: SecureSketch,
    E: StrongExtractor,
{
    /// Builds from parts.
    pub fn new(sketcher: S, extractor: E) -> Self {
        FuzzyExtractor {
            sketcher,
            extractor,
        }
    }

    /// Borrows the sketch scheme.
    pub fn sketch_scheme(&self) -> &S {
        &self.sketcher
    }

    /// Borrows the extractor.
    pub fn extractor(&self) -> &E {
        &self.extractor
    }

    /// `Gen(x) → (R, P)`: sketches `x`, draws a fresh extractor seed, and
    /// extracts the key.
    ///
    /// # Errors
    /// Propagates sketch errors ([`SketchError`]).
    pub fn generate<R: RngCore + ?Sized>(
        &self,
        input: &[i64],
        rng: &mut R,
    ) -> Result<(ExtractedKey, HelperData<S::Sketch>), SketchError> {
        let sketch = self.sketcher.sketch(input, rng)?;
        // The key must be derived from the canonical representative that
        // Rep will reconstruct.
        let canonical = self.sketcher.recover(input, &sketch)?;
        let mut seed = vec![0u8; self.extractor.seed_len(encode_i64_vector(&canonical).len())];
        rng.fill_bytes(&mut seed);
        let key = ExtractedKey::new(
            self.extractor
                .extract(&encode_i64_vector(&canonical), &seed),
        );
        Ok((key, HelperData { sketch, seed }))
    }

    /// `Rep(y, P) → R`: recovers the enrolled value through the sketch and
    /// re-extracts the key.
    ///
    /// # Errors
    /// [`SketchError::OutOfRange`] / [`SketchError::TagMismatch`] when `y`
    /// is too far from the enrolled value or the helper data was tampered
    /// with.
    pub fn reproduce(
        &self,
        reading: &[i64],
        helper: &HelperData<S::Sketch>,
    ) -> Result<ExtractedKey, SketchError> {
        let recovered = self.sketcher.recover(reading, &helper.sketch)?;
        Ok(ExtractedKey::new(
            self.extractor
                .extract(&encode_i64_vector(&recovered), &helper.seed),
        ))
    }
}

impl<D, E> FuzzyExtractor<RobustSketch<ChebyshevSketch, D>, E>
where
    D: Digest,
    E: StrongExtractor,
{
    /// The paper's concrete sketcher (for line/threshold introspection).
    pub fn sketcher(&self) -> &ChebyshevSketch {
        self.sketch_scheme().inner()
    }
}

impl FuzzyExtractor<RobustSketch<ChebyshevSketch, Sha256>, HmacExtractor> {
    /// The paper's instantiation: robust Chebyshev sketch (SHA-256 tag)
    /// plus HMAC-SHA-256 extractor producing `key_len` bytes.
    pub fn with_defaults(sketch: ChebyshevSketch, key_len: usize) -> Self {
        FuzzyExtractor::new(RobustSketch::new(sketch), HmacExtractor::new(key_len))
    }
}

// Re-check the SketchBytes bound is satisfied for the default stack (a
// compile-time assertion more than anything).
const _: fn() = || {
    fn assert_bytes<T: SketchBytes>() {}
    assert_bytes::<Vec<i64>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DefaultFuzzyExtractor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn extractor() -> DefaultFuzzyExtractor {
        FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4242)
    }

    #[test]
    fn generate_reproduce_roundtrip() {
        let fe = extractor();
        let mut r = rng();
        let x = fe.sketcher().line().random_vector(128, &mut r);
        let (key, helper) = fe.generate(&x, &mut r).unwrap();
        assert_eq!(key.len(), 32);
        let noisy: Vec<i64> = x.iter().map(|v| v + 100).collect();
        assert_eq!(fe.reproduce(&noisy, &helper).unwrap(), key);
    }

    #[test]
    fn far_reading_fails() {
        let fe = extractor();
        let mut r = rng();
        let x = fe.sketcher().line().random_vector(64, &mut r);
        let (_, helper) = fe.generate(&x, &mut r).unwrap();
        let impostor = fe.sketcher().line().random_vector(64, &mut r);
        assert!(fe.reproduce(&impostor, &helper).is_err());
    }

    #[test]
    fn different_seeds_different_keys() {
        // Gen is randomized: two enrollments of the same biometric give
        // different keys and helper data (reusability hygiene).
        let fe = extractor();
        let mut r = rng();
        let x = fe.sketcher().line().random_vector(32, &mut r);
        let (k1, h1) = fe.generate(&x, &mut r).unwrap();
        let (k2, h2) = fe.generate(&x, &mut r).unwrap();
        assert_ne!(k1, k2);
        assert_ne!(h1.seed, h2.seed);
    }

    #[test]
    fn helper_tampering_detected() {
        let fe = extractor();
        let mut r = rng();
        let x = fe.sketcher().line().random_vector(32, &mut r);
        let (_, mut helper) = fe.generate(&x, &mut r).unwrap();
        helper.sketch.inner[0] += 2;
        assert!(fe.reproduce(&x, &helper).is_err());
    }

    #[test]
    fn seed_tampering_changes_key() {
        // Flipping the extractor seed does not break Rec (the seed is not
        // hash-bound in the paper's P = (s, r)) but must change the key,
        // so signature verification downstream fails.
        let fe = extractor();
        let mut r = rng();
        let x = fe.sketcher().line().random_vector(32, &mut r);
        let (key, mut helper) = fe.generate(&x, &mut r).unwrap();
        helper.seed[0] ^= 1;
        let key2 = fe.reproduce(&x, &helper).unwrap();
        assert_ne!(key, key2);
    }

    #[test]
    fn key_length_configurable() {
        let mut r = rng();
        for len in [16usize, 32, 64] {
            let fe = FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), len);
            let x = fe.sketcher().line().random_vector(8, &mut r);
            let (key, _) = fe.generate(&x, &mut r).unwrap();
            assert_eq!(key.len(), len);
        }
    }

    #[test]
    fn deterministic_given_helper() {
        let fe = extractor();
        let mut r = rng();
        let x = fe.sketcher().line().random_vector(16, &mut r);
        let (key, helper) = fe.generate(&x, &mut r).unwrap();
        for _ in 0..5 {
            assert_eq!(fe.reproduce(&x, &helper).unwrap(), key);
        }
    }
}
