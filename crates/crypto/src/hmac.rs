//! HMAC (RFC 2104), generic over any [`Digest`].

use crate::digest::Digest;
use std::marker::PhantomData;

/// Keyed-hash message authentication code.
///
/// ```rust
/// use fe_crypto::{Hmac, Sha256};
///
/// let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(
///     fe_crypto::hex_encode(&tag),
///     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
/// );
/// ```
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    opad_key: Vec<u8>,
    _marker: PhantomData<D>,
}

impl<D: Digest> Hmac<D> {
    /// Creates a MAC instance for the given key.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let hashed = D::digest(key);
            key_block[..hashed.len()].copy_from_slice(&hashed);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let ipad_key: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
        let opad_key: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();

        let mut inner = D::new();
        inner.update(&ipad_key);
        Hmac {
            inner,
            opad_key,
            _marker: PhantomData,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the authentication tag
    /// (`D::OUTPUT_LEN` bytes).
    pub fn finalize(self) -> Vec<u8> {
        let inner_hash = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.opad_key);
        outer.update(&inner_hash);
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// One-shot MAC over multiple message parts (avoids concatenation
    /// ambiguity at call sites that already frame their data).
    pub fn mac_parts(key: &[u8], parts: &[&[u8]]) -> Vec<u8> {
        let mut h = Self::new(key);
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hex_encode, Sha256, Sha512};

    // RFC 4231 test vectors.

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex_encode(&Hmac::<Sha256>::mac(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex_encode(&Hmac::<Sha512>::mac(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
                .replace(' ', "")
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex_encode(&Hmac::<Sha256>::mac(
                b"Jefe",
                b"what do ya want for nothing?"
            )),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_key_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex_encode(&Hmac::<Sha256>::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn key_longer_than_block_is_hashed() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex_encode(&Hmac::<Sha256>::mac(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key";
        let data = b"a message split into several pieces";
        let mut h = Hmac::<Sha256>::new(key);
        h.update(&data[..5]);
        h.update(&data[5..20]);
        h.update(&data[20..]);
        assert_eq!(h.finalize(), Hmac::<Sha256>::mac(key, data));
    }

    #[test]
    fn mac_parts_is_concatenation() {
        let key = b"k";
        let parts: [&[u8]; 3] = [b"a", b"bc", b"def"];
        assert_eq!(
            Hmac::<Sha256>::mac_parts(key, &parts),
            Hmac::<Sha256>::mac(key, b"abcdef")
        );
    }

    #[test]
    fn different_keys_different_tags() {
        let t1 = Hmac::<Sha256>::mac(b"key1", b"msg");
        let t2 = Hmac::<Sha256>::mac(b"key2", b"msg");
        assert_ne!(t1, t2);
    }
}
