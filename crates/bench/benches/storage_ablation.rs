//! **Storage ablation (ours)**: Vec-of-Vec rows vs the columnar
//! [`SketchArena`] behind every index.
//!
//! The paper's identification scan is memory-bound at scale, so the
//! storage layout — not the per-coordinate arithmetic — sets the
//! throughput ceiling. This ablation pits the seed layout
//! (`Vec<Option<Vec<i64>>>`: a heap allocation and pointer chase per
//! record, 8 bytes per coordinate) against the arena (one contiguous
//! width-adaptive buffer + tombstone bitmap) on three axes:
//!
//! * `lookup/*` — worst-case probe (matches the last enrolled record,
//!   so the whole population is scanned with early abort);
//! * `bulk_load/*` — enrollment rate, with the arena pre-sized the way
//!   snapshot recovery pre-sizes it;
//! * bytes/record — reported to stdout and
//!   `target/experiments/storage_ablation.csv` from `heap_bytes()`
//!   (at the paper's `ka = 400` the arena auto-selects `i16` cells:
//!   2 bytes/coordinate vs the baseline's 8 plus per-row overhead).
//!
//! `FE_BENCH_SMOKE=1` shrinks the sweep to a CI-sized smoke run that
//! still executes every cell-width dispatch path (`i16`/`i32`/`i64`)
//! and the pre-sized bulk-load path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fe_bench::{smoke, time_it, write_csv};
use fe_core::conditions::sketches_match;
use fe_core::{CellWidth, ScanIndex, SketchIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const DIM: usize = 32;
const T: u64 = 100;
const KA: u64 = 400;

/// The seed storage layout, preserved here as the ablation baseline:
/// one boxed row per record behind an `Option` tombstone.
struct VecOfVecScan {
    t: u64,
    ka: u64,
    entries: Vec<Option<Vec<i64>>>,
}

impl VecOfVecScan {
    fn new(t: u64, ka: u64) -> Self {
        VecOfVecScan {
            t,
            ka,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, sketch: Vec<i64>) {
        self.entries.push(Some(sketch));
    }

    fn lookup(&self, probe: &[i64]) -> Option<usize> {
        self.entries.iter().position(|s| {
            s.as_ref().is_some_and(|s| {
                s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
            })
        })
    }

    fn heap_bytes(&self) -> usize {
        let table = self.entries.capacity() * std::mem::size_of::<Option<Vec<i64>>>();
        let rows: usize = self
            .entries
            .iter()
            .flatten()
            .map(|s| s.capacity() * std::mem::size_of::<i64>())
            .sum();
        table + rows
    }
}

/// Uniform sketch vectors over the ring (storage is what's measured;
/// the scan cost model only needs per-coordinate uniformity).
fn synth_sketches(n: usize, ka: u64, rng: &mut StdRng) -> Vec<Vec<i64>> {
    let half = (ka / 2) as i64;
    (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-half..=half)).collect())
        .collect()
}

/// A probe that matches `sketch` on every coordinate (distance ≤ t).
fn matching_probe(sketch: &[i64], t: u64, ka: u64, rng: &mut StdRng) -> Vec<i64> {
    let half = (ka / 2) as i64;
    sketch
        .iter()
        .map(|&v| {
            let noisy = v + rng.gen_range(-(t as i64)..=t as i64);
            // Stay on canonical ring values, like a real sketch would.
            let r = noisy.rem_euclid(ka as i64);
            if r > half {
                r - ka as i64
            } else {
                r
            }
        })
        .collect()
}

fn bench_storage(c: &mut Criterion) {
    let smoke = smoke::smoke_mode();
    let sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut group = c.benchmark_group("storage_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke { 1 } else { 2 }));
    group.warm_up_time(Duration::from_millis(if smoke { 100 } else { 500 }));

    let mut csv_rows = Vec::new();
    let mut smoke_metrics: Vec<(String, f64)> = Vec::new();
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(0x5704 + n as u64);
        let sketches = synth_sketches(n, KA, &mut rng);
        // Worst case for the scan: the probe resolves at the very last
        // record, so every row is visited.
        let probe = matching_probe(sketches.last().unwrap(), T, KA, &mut rng);

        let mut baseline = VecOfVecScan::new(T, KA);
        let mut columnar = ScanIndex::new(T, KA);
        columnar.reserve(n, DIM);
        for s in &sketches {
            baseline.insert(s.clone());
            columnar.insert(s);
        }
        assert_eq!(columnar.arena().width(), CellWidth::I16);
        assert_eq!(baseline.lookup(&probe), columnar.lookup(&probe));

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("lookup/baseline", n), &n, |b, _| {
            b.iter(|| {
                baseline
                    .lookup(std::hint::black_box(&probe))
                    .expect("found")
            })
        });
        group.bench_with_input(BenchmarkId::new("lookup/columnar", n), &n, |b, _| {
            b.iter(|| {
                columnar
                    .lookup(std::hint::black_box(&probe))
                    .expect("found")
            })
        });

        // Bulk load: the recovery path (pre-sized arena) vs pushing
        // boxed rows. Loads are re-done per iteration, so keep the
        // budget in check by loading a slice at the larger sizes.
        let load = &sketches[..n.min(100_000)];
        group.throughput(Throughput::Elements(load.len() as u64));
        group.bench_with_input(BenchmarkId::new("bulk_load/baseline", n), &n, |b, _| {
            b.iter(|| {
                let mut idx = VecOfVecScan::new(T, KA);
                for s in load {
                    idx.insert(s.clone());
                }
                idx.entries.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bulk_load/columnar", n), &n, |b, _| {
            b.iter(|| {
                let mut idx = ScanIndex::new(T, KA);
                idx.reserve(load.len(), DIM);
                for s in load {
                    idx.insert(s);
                }
                idx.len()
            })
        });

        // Machine-readable smoke numbers: one timed worst-case lookup
        // per layout, plus bytes/record.
        let (_, base_secs) = time_it(|| baseline.lookup(&probe).expect("found"));
        let (_, col_secs) = time_it(|| columnar.lookup(&probe).expect("found"));
        smoke_metrics.push((format!("baseline_lookup_us_{n}"), base_secs * 1e6));
        smoke_metrics.push((format!("columnar_lookup_us_{n}"), col_secs * 1e6));

        let base_bpr = baseline.heap_bytes() as f64 / n as f64;
        let col_bpr = columnar.heap_bytes() as f64 / n as f64;
        smoke_metrics.push((format!("baseline_bytes_per_record_{n}"), base_bpr));
        smoke_metrics.push((format!("columnar_bytes_per_record_{n}"), col_bpr));
        println!(
            "storage_ablation/bytes_per_record/{n}: baseline {base_bpr:.1} B, \
             columnar {col_bpr:.1} B ({:.1}× smaller)",
            base_bpr / col_bpr
        );
        csv_rows.push(format!("{n},{base_bpr:.1},{col_bpr:.1}"));
    }
    group.finish();
    let path = write_csv(
        "storage_ablation.csv",
        "records,baseline_bytes_per_record,columnar_bytes_per_record",
        &csv_rows,
    );
    println!(
        "storage_ablation: bytes/record written to {}",
        path.display()
    );
    let named: Vec<(&str, f64)> = smoke_metrics
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    smoke::record("storage_ablation", &named);
}

/// Executes the two wide cell-width dispatch paths (`i32`, `i64`) so a
/// smoke run covers every kernel instantiation, and checks the widths
/// actually selected.
fn bench_width_dispatch(c: &mut Criterion) {
    let smoke = smoke::smoke_mode();
    let n = if smoke { 2_000 } else { 50_000 };
    let mut group = c.benchmark_group("storage_ablation_widths");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(100));

    for (name, ka, expect) in [
        ("i16", KA, CellWidth::I16),
        ("i32", 1u64 << 20, CellWidth::I32),
        ("i64", 1u64 << 40, CellWidth::I64),
    ] {
        let mut rng = StdRng::seed_from_u64(0x51DE + ka);
        let t = ka / 4;
        let sketches = synth_sketches(n, ka, &mut rng);
        let probe = matching_probe(sketches.last().unwrap(), t, ka, &mut rng);
        let mut index = ScanIndex::new(t, ka);
        index.reserve(n, DIM);
        for s in &sketches {
            index.insert(s);
        }
        assert_eq!(index.arena().width(), expect);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("lookup", name), &n, |b, _| {
            b.iter(|| index.lookup(std::hint::black_box(&probe)).expect("found"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage, bench_width_dispatch);
criterion_main!(benches);
