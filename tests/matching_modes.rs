//! Matching-modes suite: the count-bounded and subset-masked scan
//! kernels, multi-template (paired) records, and the four server-side
//! matching modes — each checked against a naive oracle built from
//! nothing but the scalar `cyclic_close` test, across every kernel
//! (scalar / SWAR / auto-dispatched SIMD), sequential and parallel
//! sweeps, and every cell-width class.

use fuzzy_id::core::conditions::{cyclic_close, sketches_match};
use fuzzy_id::core::{Combine, FilterConfig, PairedArena, ParallelConfig, RowMask, SketchArena};
use fuzzy_id::protocol::{
    AuthenticationServer, BiometricDevice, ProtocolError, SystemParams, UserId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// The oracle: a Vec-of-Option model over the scalar cyclic test. No
// columns, no planes, no budget cleverness — matches are enumerated in
// full and truncated afterwards.
// ---------------------------------------------------------------------------

fn row_matches(row: &[i64], probe: &[i64], t: u64, ka: u64) -> bool {
    row.len() == probe.len()
        && row
            .iter()
            .zip(probe.iter())
            .all(|(&a, &b)| cyclic_close(a, b, t, ka))
}

struct Model {
    t: u64,
    ka: u64,
    rows: Vec<Option<Vec<i64>>>,
}

impl Model {
    /// All matching live row ids, ascending.
    fn all(&self, probe: &[i64]) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.as_ref()
                    .is_some_and(|r| row_matches(r, probe, self.t, self.ka))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Find-at-most-K: the `budget` lowest matching ids.
    fn at_most(&self, probe: &[i64], budget: usize) -> Vec<usize> {
        let mut all = self.all(probe);
        all.truncate(budget);
        all
    }

    /// Find-at-most-K over an id subset.
    fn at_most_masked(&self, probe: &[i64], mask: &RowMask, budget: usize) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .all(probe)
            .into_iter()
            .filter(|&i| mask.contains(i))
            .collect();
        all.truncate(budget);
        all
    }
}

struct PairedModel {
    t: u64,
    ka: u64,
    rows: Vec<Option<(Vec<i64>, Vec<i64>)>>,
}

impl PairedModel {
    fn matches(&self, row: &(Vec<i64>, Vec<i64>), lp: &[i64], rp: &[i64], c: Combine) -> bool {
        let l = row_matches(&row.0, lp, self.t, self.ka);
        let r = row_matches(&row.1, rp, self.t, self.ka);
        match c {
            Combine::Max => l && r,
            Combine::Min => l || r,
        }
    }

    fn at_most(&self, lp: &[i64], rp: &[i64], c: Combine, budget: usize) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.as_ref().is_some_and(|row| self.matches(row, lp, rp, c)))
            .map(|(i, _)| i)
            .take(budget)
            .collect()
    }

    fn at_most_masked(
        &self,
        lp: &[i64],
        rp: &[i64],
        c: Combine,
        mask: &RowMask,
        budget: usize,
    ) -> Vec<usize> {
        self.at_most(lp, rp, c, usize::MAX)
            .into_iter()
            .filter(|&i| mask.contains(i))
            .take(budget)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Strategies. Populations are built from a handful of base sketches
// replicated with ±2t noise so that multi-match clusters (the whole
// point of a budget) arise in every case, on every ring width class —
// including the ka ≥ 2⁶³ regime where the kernel widens through i128.
// ---------------------------------------------------------------------------

fn ring() -> impl Strategy<Value = (u64, u64)> {
    (0u8..4)
        .prop_flat_map(|width| {
            let (lo, hi) = match width {
                0 => (4u64, (1 << 15) - 1),
                1 => (1u64 << 15, (1 << 31) - 1),
                2 => (1u64 << 31, (1 << 62) - 1),
                _ => (1u64 << 63, u64::MAX),
            };
            lo..=hi
        })
        .prop_flat_map(|ka| (1u64..(ka / 2).clamp(2, 1 << 30), Just(ka)))
}

/// (base-pool index, per-coordinate noise in ±2t, alive?) — rows and
/// probes both derive from the shared base pool, so matches, near
/// misses, and tombstoned matches all occur.
type Derived = (usize, Vec<i64>, bool);

#[allow(clippy::type_complexity)]
fn population() -> impl Strategy<Value = (u64, u64, Vec<Vec<i64>>, Vec<Derived>, Vec<Derived>, u64)>
{
    (ring(), 1usize..5).prop_flat_map(|((t, ka), dim)| {
        let half = (ka / 2).min(i64::MAX as u64 / 4) as i64;
        let spread = 2 * t as i64;
        let base = prop::collection::vec(-half..=half, dim..dim + 1);
        let derived = move || {
            (
                0usize..4,
                prop::collection::vec(-spread..=spread, dim..dim + 1),
                any::<bool>(),
            )
        };
        (
            Just(t),
            Just(ka),
            prop::collection::vec(base, 1..4),
            prop::collection::vec(derived(), 1..32),
            prop::collection::vec(derived(), 1..6),
            any::<u64>(),
        )
    })
}

fn materialize(bases: &[Vec<i64>], (sel, noise, _): &Derived) -> Vec<i64> {
    bases[sel % bases.len()]
        .iter()
        .zip(noise.iter())
        .map(|(&v, &d)| v.saturating_add(d))
        .collect()
}

/// Every kernel × sweep-shape combination under test: auto-dispatched
/// SIMD, forced SWAR, and plain scalar, each sequential (the default
/// threshold never triggers on these tiny populations) and forced
/// parallel at 2, 4, and uncapped workers.
fn kernel_sweep() -> Vec<FilterConfig> {
    let mut out = Vec::new();
    for filter in [
        FilterConfig::default(),
        FilterConfig::swar(),
        FilterConfig::disabled(),
    ] {
        out.push(filter);
        for threads in [2usize, 4, 0] {
            out.push(filter.with_parallel(ParallelConfig::forced(threads)));
        }
    }
    out
}

const BUDGETS: [usize; 5] = [0, 1, 2, 3, usize::MAX];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole equivalence, single-template: `find_at_most` and
    /// `find_at_most_masked` ≡ the oracle for every budget, every mask,
    /// every kernel, sequential and parallel.
    #[test]
    fn bounded_and_masked_scan_match_oracle(
        (t, ka, bases, rows, probes, mask_seed) in population(),
    ) {
        rayon::ensure_threads(4);
        let model = Model {
            t,
            ka,
            rows: rows
                .iter()
                .map(|r| r.2.then(|| materialize(&bases, r)))
                .collect(),
        };
        let mask = RowMask::from_rows(
            (0..rows.len()).filter(|i| mask_seed & (1u64 << (i % 64)) != 0),
        );
        for filter in kernel_sweep() {
            let mut arena = SketchArena::with_filter(t, ka, filter);
            for row in &rows {
                let id = arena.push(&materialize(&bases, row));
                if !row.2 {
                    arena.remove(id);
                }
            }
            for probe in &probes {
                let probe = materialize(&bases, probe);
                for budget in BUDGETS {
                    prop_assert_eq!(
                        arena.find_at_most(&probe, budget),
                        model.at_most(&probe, budget),
                        "find_at_most(budget={}) diverged on kernel {}",
                        budget, arena.filter_kernel()
                    );
                    prop_assert_eq!(
                        arena.find_at_most_masked(&probe, &mask, budget),
                        model.at_most_masked(&probe, &mask, budget),
                        "masked(budget={}) diverged on kernel {}",
                        budget, arena.filter_kernel()
                    );
                }
            }
        }
    }

    /// Tentpole equivalence, multi-template: `PairedArena` under both
    /// combines ≡ the oracle's per-side boolean algebra
    /// (`Max`: both sides ≤ t; `Min`: either side ≤ t), masked and
    /// unmasked, across the same kernel × thread sweep.
    #[test]
    fn paired_arena_matches_oracle(
        (t, ka, bases, rows, probes, mask_seed) in population(),
    ) {
        rayon::ensure_threads(4);
        // Right templates reuse the base pool rotated by one, so the
        // two sides agree on some rows and disagree on others.
        let right_of = |d: &Derived| -> Vec<i64> {
            materialize(&bases, &(d.0 + 1, d.1.clone(), d.2))
        };
        let model = PairedModel {
            t,
            ka,
            rows: rows
                .iter()
                .map(|r| r.2.then(|| (materialize(&bases, r), right_of(r))))
                .collect(),
        };
        let mask = RowMask::from_rows(
            (0..rows.len()).filter(|i| mask_seed & (1u64 << (i % 64)) != 0),
        );
        for filter in kernel_sweep() {
            let mut arena = PairedArena::with_filter(t, ka, filter);
            for row in &rows {
                let id = arena.push(&materialize(&bases, row), &right_of(row));
                if !row.2 {
                    arena.remove(id);
                }
            }
            for probe in &probes {
                let (lp, rp) = (materialize(&bases, probe), right_of(probe));
                for combine in [Combine::Max, Combine::Min] {
                    for budget in BUDGETS {
                        prop_assert_eq!(
                            arena.find_at_most(&lp, &rp, combine, budget),
                            model.at_most(&lp, &rp, combine, budget),
                            "paired {:?} (budget={}) diverged on kernel {}",
                            combine, budget, arena.left().filter_kernel()
                        );
                        prop_assert_eq!(
                            arena.find_at_most_masked(&lp, &rp, combine, &mask, budget),
                            model.at_most_masked(&lp, &rp, combine, &mask, budget),
                            "paired masked {:?} (budget={}) diverged on kernel {}",
                            combine, budget, arena.left().filter_kernel()
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Edge cases the proptests reach only by luck: budgets filling exactly
// at chunk boundaries, cancellation racing tombstones, and the three
// degenerate mask shapes.
// ---------------------------------------------------------------------------

const T: u64 = 100;
const KA: u64 = 400;

fn forced(threads: usize) -> FilterConfig {
    FilterConfig::default().with_parallel(ParallelConfig::forced(threads))
}

/// The `budget`-th match landing exactly on a 64-row liveness-word (and
/// parallel chunk) boundary must neither duplicate nor drop hits: the
/// fetch-min bound published by one chunk cancels the ones above it.
#[test]
fn exactly_k_at_chunk_boundaries() {
    rayon::ensure_threads(4);
    let hits = [0usize, 63, 64, 65, 127, 128, 191, 255];
    for filter in [
        FilterConfig::default(),
        FilterConfig::swar(),
        FilterConfig::disabled(),
        forced(2),
        forced(4),
    ] {
        let mut arena = SketchArena::with_filter(T, KA, filter);
        for row in 0..256usize {
            // Matching rows sit at `hits`; everything else is far away.
            let v = if hits.contains(&row) { 0i64 } else { 195 };
            arena.push(&[v]);
        }
        for k in 0..=hits.len() + 1 {
            assert_eq!(
                arena.find_at_most(&[0], k),
                &hits[..k.min(hits.len())],
                "budget {k} on kernel {}",
                arena.filter_kernel()
            );
        }
    }
}

/// Cancellation under tombstones: with every row matching and a prefix
/// revoked, the bounded sweep must return the first `budget` *live*
/// ids — chunks whose range was cancelled by an earlier winner must not
/// have consumed the budget with rows that later turn out dead.
#[test]
fn budget_cancellation_survives_tombstones() {
    rayon::ensure_threads(4);
    for kill in [0usize, 1, 63, 64, 65, 130] {
        let mut arena = SketchArena::with_filter(T, KA, forced(4));
        for _ in 0..257 {
            arena.push(&[7]);
        }
        for id in 0..kill {
            arena.remove(id);
        }
        // Scattered mid-range tombstones on top of the prefix.
        arena.remove(200);
        let expect: Vec<usize> = (kill..257).filter(|&id| id != 200).take(3).collect();
        assert_eq!(arena.find_at_most(&[7], 3), expect, "kill prefix {kill}");
    }
}

/// Mask degeneracies: empty selects nothing, full is identical to the
/// unmasked sweep, and a one-row mask isolates exactly that row's
/// match decision (dead rows stay unmatchable even when selected).
#[test]
fn masks_empty_full_and_one_row() {
    rayon::ensure_threads(4);
    for filter in [FilterConfig::default(), forced(4)] {
        let mut arena = SketchArena::with_filter(T, KA, filter);
        for row in 0..130i64 {
            arena.push(&[if row % 3 == 0 { 10 } else { 190 }]);
        }
        arena.remove(6);
        let probe = [5i64];

        assert_eq!(
            arena.find_at_most_masked(&probe, &RowMask::new(), 8),
            vec![]
        );

        let full = RowMask::from_rows(0..130);
        assert_eq!(
            arena.find_at_most_masked(&probe, &full, usize::MAX),
            arena.find_at_most(&probe, usize::MAX)
        );

        for row in 0..130usize {
            let one = RowMask::from_rows([row]);
            let got = arena.find_at_most_masked(&probe, &one, 8);
            let matches = row % 3 == 0 && row != 6;
            assert_eq!(got, if matches { vec![row] } else { vec![] }, "row {row}");
        }
    }
}

// ---------------------------------------------------------------------------
// Server-level modes vs the helper-data oracle: every stored record's
// sketch is readable through `all_helpers`, so the four protocol modes
// can be re-derived from first principles and compared.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `reset`, `authenticate_claimed`, `check_local_uniqueness`, and
    /// `enroll_unique` all agree with the match-set computed naively
    /// over the stored helper sketches — on genuine, impostor, and
    /// deliberately ambiguous (duplicate-biometric) probes.
    #[test]
    fn server_modes_agree_with_helper_oracle(
        seed in any::<u64>(),
        users in 2usize..7,
        dup in any::<bool>(),
    ) {
        let params = SystemParams::insecure_test_defaults();
        let t = params.sketch().threshold();
        let ka = params.sketch().line().interval_len();
        let device = BiometricDevice::new(params.clone());
        let mut server = AuthenticationServer::new(params.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 32;
        let mut bios = Vec::new();
        for u in 0..users {
            let bio = params.sketch().line().random_vector(dim, &mut rng);
            server
                .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
                .unwrap();
            bios.push(bio);
        }
        if dup {
            // Permissive default admits a duplicate biometric — the
            // ambiguity reset must then detect.
            let noisy: Vec<i64> = bios[0].iter().map(|&x| x + 3).collect();
            server
                .enroll(device.enroll("user-0-dup", &noisy, &mut rng).unwrap())
                .unwrap();
        }
        let helpers = server.all_helpers();
        let oracle = |probe: &[i64]| -> Vec<UserId> {
            helpers
                .iter()
                .filter(|(_, h)| {
                    h.sketch.inner.len() == probe.len()
                        && sketches_match(&h.sketch.inner, probe, t, ka)
                })
                .map(|(id, _)| id.clone())
                .collect()
        };

        // Genuine probes for every user plus one impostor probe.
        let mut probes = Vec::new();
        for bio in &bios {
            let reading: Vec<i64> =
                bio.iter().map(|&x| x + rng.gen_range(-90i64..=90)).collect();
            probes.push(device.probe_sketch(&reading, &mut rng).unwrap());
        }
        let stranger = params.sketch().line().random_vector(dim, &mut rng);
        probes.push(device.probe_sketch(&stranger, &mut rng).unwrap());

        for probe in &probes {
            let expect = oracle(probe);

            // Reset: 0 / exactly-1 / ≥2.
            match server.reset(probe) {
                Ok(id) => prop_assert_eq!(vec![id], expect.clone()),
                Err(ProtocolError::NoMatch) => prop_assert!(expect.is_empty()),
                Err(ProtocolError::AmbiguousMatch) => prop_assert!(expect.len() >= 2),
                Err(e) => prop_assert!(false, "unexpected reset error {e:?}"),
            }

            // Targeted authentication checks exactly the claimed record.
            for (id, _) in &helpers {
                prop_assert_eq!(
                    server.authenticate_claimed(id, probe).unwrap(),
                    expect.contains(id),
                    "claim {} diverged", id
                );
            }

            // Local uniqueness over a pseudo-random id subset.
            let subset: Vec<UserId> = helpers
                .iter()
                .enumerate()
                .filter(|(i, _)| seed & (1u64 << (i % 64)) != 0)
                .map(|(_, (id, _))| id.clone())
                .collect();
            prop_assert_eq!(
                server.check_local_uniqueness(probe, &subset).unwrap(),
                !subset.iter().any(|id| expect.contains(id)),
            );
        }

        // Uniqueness-checked enrollment: a fresh record is admitted iff
        // its sketch matches nothing already stored.
        let near: Vec<i64> = bios[1].iter().map(|&x| x + 5).collect();
        for bio in [near, params.sketch().line().random_vector(dim, &mut rng)] {
            let record = device.enroll("candidate", &bio, &mut rng).unwrap();
            let expect = oracle(&record.helper.sketch.inner);
            match server.enroll_unique(record) {
                Ok(()) => {
                    prop_assert!(expect.is_empty());
                    server.revoke("candidate").unwrap();
                }
                Err(ProtocolError::DuplicateBiometric(id)) => {
                    prop_assert!(expect.contains(&id));
                }
                Err(e) => prop_assert!(false, "unexpected enroll error {e:?}"),
            }
        }
    }
}
