//! Wire messages exchanged between the biometric device and the
//! authentication server.

use fe_core::{HelperData, RobustData};
use serde::{Deserialize, Serialize};

/// User identity string (`ID` in the paper).
pub type UserId = String;

/// Challenge session identifier (one per in-flight identification or
/// verification; consumed on completion → replay protection).
pub type SessionId = u64;

/// The helper data layout on the wire: the robust Chebyshev sketch plus
/// extractor seed.
pub type WireHelper = HelperData<RobustData<Vec<i64>>>;

/// Enrollment message (`BioD → AS` in Fig. 1): identity, DSA public key
/// bytes, helper data. The biometric and private key never leave the
/// device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnrollmentRecord {
    /// The user's claimed identity.
    pub id: UserId,
    /// Serialized DSA verification key `pk`.
    pub public_key: Vec<u8>,
    /// Public helper data `P = (s, h, r)`.
    pub helper: WireHelper,
}

/// Challenge message (`AS → BioD` in Fig. 3): the matched record's helper
/// data and a fresh random challenge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentChallenge {
    /// Session handle to correlate the response.
    pub session: SessionId,
    /// Helper data of the matched record.
    pub helper: WireHelper,
    /// The random challenge `c`.
    pub challenge: u64,
}

/// Response message (`BioD → AS` in Fig. 3): a signature over
/// `(c, a)` plus the device nonce `a`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentResponse {
    /// Session handle echoed from the challenge.
    pub session: SessionId,
    /// Serialized DSA signature over the challenge message.
    pub signature: Vec<u8>,
    /// The device's random nonce `a`.
    pub nonce: u64,
}

/// Result of an identification or verification run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdentOutcome {
    /// The user was identified / verified as `ID`.
    Identified(UserId),
    /// The run failed (`⊥`).
    Rejected,
}

impl IdentOutcome {
    /// The identity on success, `None` on rejection.
    pub fn identity(&self) -> Option<&str> {
        match self {
            IdentOutcome::Identified(id) => Some(id),
            IdentOutcome::Rejected => None,
        }
    }

    /// `true` when the user was identified.
    pub fn is_identified(&self) -> bool {
        matches!(self, IdentOutcome::Identified(_))
    }
}

/// The canonical byte encoding of the signed challenge message `(c, a)`.
///
/// Both sides must agree on this framing; domain separation keeps the
/// signature bound to this protocol.
pub fn challenge_message(session: SessionId, challenge: u64, nonce: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * 3 + 16);
    out.extend_from_slice(b"fe-ident-chal-v1");
    out.extend_from_slice(&session.to_be_bytes());
    out.extend_from_slice(&challenge.to_be_bytes());
    out.extend_from_slice(&nonce.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let ok = IdentOutcome::Identified("u1".into());
        assert!(ok.is_identified());
        assert_eq!(ok.identity(), Some("u1"));
        let no = IdentOutcome::Rejected;
        assert!(!no.is_identified());
        assert_eq!(no.identity(), None);
    }

    #[test]
    fn challenge_message_is_injective_in_fields() {
        let base = challenge_message(1, 2, 3);
        assert_ne!(base, challenge_message(9, 2, 3));
        assert_ne!(base, challenge_message(1, 9, 3));
        assert_ne!(base, challenge_message(1, 2, 9));
        assert_eq!(base, challenge_message(1, 2, 3));
    }

    #[test]
    fn challenge_message_domain_separated() {
        assert!(challenge_message(0, 0, 0).starts_with(b"fe-ident-chal-v1"));
    }
}
