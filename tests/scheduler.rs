//! Request-scheduler integration: scheduled identification must be
//! *semantically invisible* — any interleaving of concurrently enqueued
//! queries resolves exactly as the direct batch path would — while the
//! operational contracts (bounded queue backpressure, deadline flush on
//! a quiet server) hold.

use fuzzy_id::core::EpochIndex;
use fuzzy_id::protocol::concurrent::SharedServer;
use fuzzy_id::protocol::scheduler::{ScheduledServer, SchedulerConfig};
use fuzzy_id::protocol::{BiometricDevice, FilterConfig, ProtocolError, SystemParams, WireHelper};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const DIM: usize = 16;

fn build_population(
    shards: usize,
    users: usize,
    seed: u64,
) -> (SharedServer<EpochIndex>, BiometricDevice, Vec<Vec<i64>>) {
    let params = SystemParams::insecure_test_defaults();
    let server = SharedServer::<EpochIndex>::with_shards(params.clone(), shards);
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(DIM, &mut rng);
        server
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }
    (server, device, bios)
}

/// The identity-relevant part of a phase-1 result: which record's
/// helper data came back (sessions and challenge nonces are random by
/// design, so equivalence is over the matched record, not the bytes).
fn matched_helpers(
    results: &[Result<fuzzy_id::protocol::IdentChallenge, ProtocolError>],
    server: &SharedServer<EpochIndex>,
) -> Vec<Option<WireHelper>> {
    results
        .iter()
        .map(|r| match r {
            Ok(chal) => {
                // Consume the session so the pending table stays clean
                // across comparison rounds.
                assert!(server.cancel_session(chal.session));
                Some(chal.helper.clone())
            }
            Err(ProtocolError::NoMatch) => None,
            Err(other) => panic!("unexpected error: {other:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Scheduled identification ≡ direct `identify_batch` on the same
    /// population, for every probe in the queue, under an arbitrary
    /// interleaving of concurrent enqueuers (client count and batch
    /// knobs drawn by proptest).
    #[test]
    fn scheduled_equals_direct_identify_batch(
        seed in 0u64..1_000,
        shards in 1usize..4,
        clients in 1usize..5,
        max_batch in 1usize..7,
        impostors in 0usize..3,
    ) {
        let users = 8;
        let (server, device, bios) = build_population(shards, users, seed);
        let params = server.params().clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);

        // The probe queue: one genuine probe per user plus impostors.
        let mut probes = Vec::new();
        for bio in &bios {
            let reading: Vec<i64> = bio
                .iter()
                .map(|&x| x + rng.gen_range(-90i64..=90))
                .collect();
            probes.push(device.probe_sketch(&reading, &mut rng).unwrap());
        }
        for _ in 0..impostors {
            let stranger = params.sketch().line().random_vector(DIM, &mut rng);
            probes.push(device.probe_sketch(&stranger, &mut rng).unwrap());
        }

        // Direct path: the server's own batch entry point.
        let direct = server.identify_batch(&probes, &mut rng);
        let expected = matched_helpers(&direct, &server);

        // Scheduled path: `clients` threads enqueue disjoint interleaved
        // slices of the same queue concurrently.
        let scheduler = ScheduledServer::new(server.clone(), SchedulerConfig {
            max_batch,
            max_delay: Duration::from_millis(1),
            ..SchedulerConfig::default()
        });
        let slots: Mutex<Vec<Option<Result<_, ProtocolError>>>> =
            Mutex::new(vec![None; probes.len()]);
        std::thread::scope(|scope| {
            for c in 0..clients {
                let scheduler = &scheduler;
                let probes = &probes;
                let slots = &slots;
                scope.spawn(move || {
                    for (i, probe) in probes.iter().enumerate() {
                        if i % clients == c {
                            let result = scheduler.identify(probe.clone());
                            slots.lock().unwrap()[i] = Some(result);
                        }
                    }
                });
            }
        });
        let scheduled: Vec<Result<_, ProtocolError>> = slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("every probe was submitted"))
            .collect();
        let got = matched_helpers(&scheduled, &server);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(scheduler.metrics().admitted(), probes.len() as u64);
        prop_assert_eq!(scheduler.metrics().shed(), 0);
    }
}

/// Batch-path equivalence through the scheduler across scan kernels:
/// the micro-batches a `ScheduledServer` coalesces ride the vectorized
/// two-phase scan by default, and must resolve every probe exactly as
/// the same population served by the scalar kernel
/// (`FilterConfig::disabled()`) — both scheduled and direct.
#[test]
fn scheduled_batches_agree_across_scan_kernels() {
    let users = 12;
    let configs = [
        SystemParams::insecure_test_defaults(), // default: vectorized plane
        SystemParams::insecure_test_defaults().with_filter_config(FilterConfig::disabled()),
    ];
    let mut all_helpers: Vec<Vec<Option<WireHelper>>> = Vec::new();
    for params in configs {
        // Identical seed → identical enrollments and probes on both
        // servers; only the scan kernel differs.
        let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 2);
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(0xF117);
        let mut probes = Vec::new();
        for u in 0..users {
            let bio = params.sketch().line().random_vector(DIM, &mut rng);
            server
                .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
                .unwrap();
            let reading: Vec<i64> = bio.iter().map(|&x| x + 60 - (u as i64 * 9)).collect();
            probes.push(device.probe_sketch(&reading, &mut rng).unwrap());
        }
        // An impostor that should match nobody.
        let stranger = params.sketch().line().random_vector(DIM, &mut rng);
        probes.push(device.probe_sketch(&stranger, &mut rng).unwrap());

        // Direct batch path.
        let direct = server.identify_batch(&probes, &mut rng);
        let direct_helpers = matched_helpers(&direct, &server);
        // Scheduled path, coalesced into micro-batches.
        let scheduler = ScheduledServer::new(
            server.clone(),
            SchedulerConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                ..SchedulerConfig::default()
            },
        );
        let scheduled: Vec<Result<_, ProtocolError>> = probes
            .iter()
            .map(|p| scheduler.identify(p.clone()))
            .collect();
        let scheduled_helpers = matched_helpers(&scheduled, &server);
        assert_eq!(scheduled_helpers, direct_helpers);
        assert_eq!(scheduled_helpers.last(), Some(&None), "impostor matched");
        assert!(
            scheduled_helpers[..users].iter().all(Option::is_some),
            "a genuine probe went unmatched"
        );
        all_helpers.push(scheduled_helpers);
    }
    // Vectorized and scalar kernels resolved every probe identically.
    assert_eq!(all_helpers[0], all_helpers[1]);
}

/// Queue fills → `Overloaded`; drains → accepts again.
#[test]
fn backpressure_sheds_then_recovers() {
    let (server, device, bios) = build_population(1, 1, 42);
    let mut rng = StdRng::seed_from_u64(43);
    let scheduler = ScheduledServer::new(
        server,
        SchedulerConfig {
            max_batch: 16,
            // The only worker sits in its batch window for the whole
            // first phase of the test: nothing can drain early.
            max_delay: Duration::from_millis(1500),
            queue_capacity: 2,
            workers: 1,
            ..SchedulerConfig::default()
        },
    );
    let probe = device.probe_sketch(&bios[0], &mut rng).unwrap();

    let t1 = scheduler.submit(probe.clone()).unwrap();
    let t2 = scheduler.submit(probe.clone()).unwrap();
    // Queue full (capacity 2): the third request is shed immediately…
    assert!(matches!(
        scheduler.submit(probe.clone()),
        Err(ProtocolError::Overloaded)
    ));
    assert_eq!(scheduler.metrics().shed(), 1);
    // …the queued two still complete when the window expires…
    let c1 = t1.wait().unwrap();
    let c2 = t2.wait().unwrap();
    assert!(scheduler.server().cancel_session(c1.session));
    assert!(scheduler.server().cancel_session(c2.session));
    // …and a drained queue accepts again.
    let c3 = scheduler.identify(probe).unwrap();
    assert!(scheduler.server().cancel_session(c3.session));
    assert_eq!(scheduler.metrics().admitted(), 3);
}

/// A lone query on a quiet server flushes by deadline: it waits out the
/// batch window (nothing else will ever fill the batch) and completes.
#[test]
fn lone_query_flushes_within_the_window() {
    let (server, device, bios) = build_population(2, 2, 77);
    let params = server.params().clone();
    let mut rng = StdRng::seed_from_u64(78);
    let window = Duration::from_millis(50);
    // Exercise the SharedServer::scheduled constructor path against an
    // equivalent fresh population.
    let scheduler = SharedServer::<EpochIndex>::scheduled(
        params,
        2,
        SchedulerConfig {
            max_batch: 64,
            max_delay: window,
            ..SchedulerConfig::default()
        },
    );
    for (u, bio) in bios.iter().enumerate() {
        scheduler
            .server()
            .enroll(device.enroll(&format!("user-{u}"), bio, &mut rng).unwrap())
            .unwrap();
    }

    let reading: Vec<i64> = bios[1].iter().map(|&x| x - 30).collect();
    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
    let start = Instant::now();
    let chal = scheduler.identify(probe).unwrap();
    let elapsed = start.elapsed();
    // The batch can never fill (one request, max_batch 64): only the
    // deadline can flush it — no earlier than the window, and not
    // unboundedly later (generous upper bound for loaded CI runners).
    assert!(elapsed >= window - Duration::from_millis(5), "{elapsed:?}");
    assert!(elapsed < Duration::from_secs(10), "{elapsed:?}");
    assert_eq!(scheduler.metrics().deadline_flushes(), 1);
    assert_eq!(scheduler.metrics().size_flushes(), 0);
    assert_eq!(scheduler.metrics().batch_size.snapshot().max, 1);

    // The full protocol completes through the scheduled challenge.
    let resp = device.respond(&reading, &chal, &mut rng).unwrap();
    let outcome = scheduler.server().finish_identification(&resp).unwrap();
    assert_eq!(outcome.identity(), Some("user-1"));
}
