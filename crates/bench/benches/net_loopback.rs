//! **Networked front door (PR 9 acceptance)**: end-to-end latency of
//! identification over real loopback sockets, and wire-level load
//! shedding under an overload storm.
//!
//! Three phases against a `NetServer` on `127.0.0.1`:
//!
//! * **rtt** — criterion-timed closed-loop `Client::identify` round
//!   trips (one connection, miss probes → full worst-case sweep each
//!   call): the per-call overhead of handshake-amortized framing +
//!   envelope + scheduler + scan, as one number.
//! * **steady** — an open-loop run (`fe_bench::netload`) at a pace the
//!   server sustains; p50/p99 land in `BENCH_SMOKE.json` as
//!   `net_p50_us` / `net_p99_us`. Latencies are measured from each
//!   request's *scheduled* send time, so queueing the server causes is
//!   charged, not hidden.
//! * **storm** — an unpaced pipelined burst against a deliberately tiny
//!   admission queue (`queue_capacity` 4, one worker, a long batch
//!   window): most requests must be shed, and every shed must arrive as
//!   a wire-level `OVERLOADED` **response** — the connection stays up
//!   and keeps answering. `net_storm_shed` / `net_storm_sent` record
//!   the observed shedding; the run asserts sheds actually happened and
//!   that `shed + answered == sent`.
//!
//! With `FE_BENCH_GATE` set the run fails unless the storm shed at
//! least one request *and* every request got a response, and fails if
//! the steady-state latency is more than 2× the value recorded in the
//! committed `BENCH_SMOKE.json` (fail-if-slower vs baseline — see
//! [`fe_bench::smoke::baseline`]; `net_p99_us` on multi-core hosts,
//! `net_p50_us` on 1-CPU boxes where the tail measures the OS
//! scheduler rather than the wire path).

use criterion::{criterion_group, criterion_main, Criterion};
use fe_bench::{netload, smoke, SynthPopulation};
use fe_net::{Client, NetConfig, NetServer};
use fe_protocol::scheduler::{ScheduledServer, SchedulerConfig};
use fe_protocol::SystemParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 64;

/// Builds a probe that matches nobody: the worst case (full sweep) and
/// the steady state of a deployed identification service under probing.
fn miss_probe(pop: &SynthPopulation, params: &SystemParams, rng: &mut StdRng) -> Vec<i64> {
    pop.genuine_probe(params, 0, rng)
        .iter()
        .map(|&x| x + 77)
        .collect()
}

fn bench_net_loopback(c: &mut Criterion) {
    let smoke_run = smoke::smoke_mode();
    let population = if smoke_run { 5_000 } else { 50_000 };
    let params = SystemParams::insecure_test_defaults();
    let mut rng = StdRng::seed_from_u64(0x9E7);
    let pop = SynthPopulation::build(&params, population, DIM, &mut rng);
    let fingerprint = params.fingerprint();

    // ---- serving stack: scheduler + TCP front door -------------------
    let scheduler = Arc::new(ScheduledServer::scan(
        params.clone(),
        2,
        SchedulerConfig {
            rng_seed: 0xF00D,
            ..SchedulerConfig::default()
        },
    ));
    for record in &pop.records {
        scheduler.server().enroll(record.clone()).unwrap();
    }
    let server = NetServer::spawn(Arc::clone(&scheduler), "127.0.0.1:0", NetConfig::default())
        .expect("bind front door");
    let addr = server.local_addr();

    let misses: Vec<Vec<i64>> = (0..32)
        .map(|_| miss_probe(&pop, &params, &mut rng))
        .collect();

    // ---- phase 1: closed-loop round-trip time ------------------------
    let mut client = Client::connect(addr, &params).expect("connect");
    let mut group = c.benchmark_group("net_loopback");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 3 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 500 }));
    group.bench_function("identify/rtt_miss", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            client
                .identify(misses[i % misses.len()].clone())
                .expect_err("miss probe must not match")
        })
    });
    group.finish();
    drop(client);

    // ---- phase 2: open-loop steady state -----------------------------
    let steady = netload::run(
        addr,
        fingerprint,
        &misses,
        &netload::NetLoadConfig {
            connections: 4,
            requests_per_conn: if smoke_run { 100 } else { 500 },
            interval: Duration::from_millis(2),
            ..netload::NetLoadConfig::default()
        },
    );
    assert_eq!(
        steady.shed + steady.other_errors,
        0,
        "steady pace must not shed"
    );
    let p50 = steady.percentile_us(0.50);
    let p99 = steady.percentile_us(0.99);

    // ---- phase 3: overload storm against a tiny queue ----------------
    // A second stack whose scheduler *must* shed: one worker holding
    // batches open for a long window, four admission slots, and an
    // unpaced pipelined burst many times deeper than the queue. With
    // `max_batch > queue_capacity` the worker can never size-flush: it
    // holds each batch window open for the full `max_delay` while the
    // queued items keep the four admission slots pinned, so every
    // request arriving inside the window sheds — the outcome no longer
    // depends on how the OS interleaves reader threads with the worker
    // (or on how fast the scan kernel drains a batch).
    let storm_sched = Arc::new(ScheduledServer::scan(
        params.clone(),
        1,
        SchedulerConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
            queue_capacity: 4,
            workers: 1,
            rng_seed: 0xBAD,
        },
    ));
    for record in &pop.records[..population.min(2_000)] {
        storm_sched.server().enroll(record.clone()).unwrap();
    }
    let storm_server = NetServer::spawn(
        Arc::clone(&storm_sched),
        "127.0.0.1:0",
        NetConfig::default(),
    )
    .expect("bind storm front door");
    let storm = netload::run(
        storm_server.local_addr(),
        fingerprint,
        &misses,
        &netload::NetLoadConfig {
            connections: 4,
            requests_per_conn: if smoke_run { 50 } else { 200 },
            interval: Duration::ZERO,
            ..netload::NetLoadConfig::default()
        },
    );
    let answered = storm.matched + storm.no_match + storm.shed + storm.other_errors;
    assert_eq!(
        answered, storm.sent as u64,
        "every request must get a wire-level response, shed or served"
    );

    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The fail-if-slower baseline, read before `record` rewrites the
    // report. On a 1-CPU box the loopback p99 measures OS scheduling
    // jitter (observed swinging >2× run to run while the median moves
    // ~2%), so the gate compares the median there and the tail only
    // when a spare core keeps it honest — the same call churn_latency
    // makes for its quiescent-vs-churn bound.
    let (gate_metric, gate_value) = if hw_threads > 1 {
        ("net_p99_us", p99)
    } else {
        ("net_p50_us", p50)
    };
    let gate_baseline = smoke::baseline("net_loopback", gate_metric);
    println!(
        "net_loopback/{population}: steady p50 {p50:.1} µs p99 {p99:.1} µs \
         ({} reqs); storm {} sent / {} shed / {} served ({hw_threads} hw threads)",
        steady.sent,
        storm.sent,
        storm.shed,
        storm.matched + storm.no_match,
    );
    smoke::record(
        "net_loopback",
        &[
            ("net_p50_us", p50),
            ("net_p99_us", p99),
            ("net_requests", steady.sent as f64),
            ("net_storm_sent", storm.sent as f64),
            ("net_storm_shed", storm.shed as f64),
            ("net_storm_served", (storm.matched + storm.no_match) as f64),
            ("hw_threads", hw_threads as f64),
        ],
    );

    if std::env::var_os("FE_BENCH_GATE").is_some() {
        // The acceptance bound: overload surfaces as wire-level sheds,
        // never as dropped connections or unanswered requests.
        assert!(
            storm.shed > 0,
            "FE_BENCH_GATE: the storm (queue_capacity 4, {} pipelined requests) \
             shed nothing — backpressure is not reaching the wire",
            storm.sent,
        );
        // Steady-state wire latency must not silently regress: fail if
        // this run is slower than the recorded baseline, same pattern
        // as the `vectorized_lookup_us` kernel gate. Loopback latency
        // on a shared CI box is noisy, so the tolerance is wide — the
        // gate is for losing the wire path, not a scheduler hiccup.
        // Skipped when no mode-matched baseline exists (first run, or
        // a full-sweep run against smoke numbers).
        if let Some(base) = gate_baseline {
            let tol = 2.0;
            assert!(
                gate_value <= base * tol,
                "FE_BENCH_GATE: steady-state {gate_metric} ({gate_value:.1} µs) exceeds \
                 {tol}× the recorded baseline ({base:.1} µs) — the wire path regressed"
            );
        }
    }

    storm_server.shutdown();
    server.shutdown();
}

criterion_group!(benches, bench_net_loopback);
criterion_main!(benches);
