//! The trusted biometric device (`BioD`).

use crate::messages::{challenge_message, EnrollmentRecord, IdentChallenge, IdentResponse};
use crate::params::SystemParams;
use crate::ProtocolError;
use fe_core::SecureSketch;
use fe_crypto::sig::SignatureScheme;
use rand::Rng;
use rand::RngCore;

/// The biometric capture device. Holds only the public system
/// parameters; every secret it computes is used and dropped within a
/// single call, mirroring the paper's "erases `(ID, Bio, sk)`
/// immediately".
#[derive(Debug, Clone)]
pub struct BiometricDevice {
    params: SystemParams,
}

impl BiometricDevice {
    /// Creates a device from published system parameters.
    pub fn new(params: SystemParams) -> Self {
        BiometricDevice { params }
    }

    /// The system parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Enrollment (Fig. 1): runs `Gen(Bio) → (R, P)`, derives the DSA key
    /// pair from `R`, and emits `(ID, pk, P)`. The secret key and
    /// biometric never leave this function.
    ///
    /// # Errors
    /// Propagates fuzzy-extractor failures.
    pub fn enroll<R: RngCore + ?Sized>(
        &self,
        id: &str,
        bio: &[i64],
        rng: &mut R,
    ) -> Result<EnrollmentRecord, ProtocolError> {
        let fe = self.params.fuzzy_extractor();
        let (key, helper) = fe.generate(bio, rng)?;
        let dsa = self.params.dsa();
        let (_sk, vk) = dsa.keypair_from_seed(key.as_bytes());
        Ok(EnrollmentRecord {
            id: id.to_string(),
            public_key: vk.to_bytes(self.params.dsa_params()),
            helper,
        })
        // key (and the transient sk) drop here — "erases (ID, Bio, sk)".
    }

    /// Identification step 1 (Fig. 3): computes a *fresh* sketch `s'` of
    /// the presented biometric. This is all the server needs to locate
    /// the record — no identity claim, no biometric.
    ///
    /// # Errors
    /// Propagates sketch failures.
    pub fn probe_sketch<R: RngCore + ?Sized>(
        &self,
        bio: &[i64],
        rng: &mut R,
    ) -> Result<Vec<i64>, ProtocolError> {
        Ok(self.params.sketch().sketch(bio, rng)?)
    }

    /// Identification step 2 (Fig. 3): given the server's challenge and
    /// helper data, recovers the signing key via `Rep` and signs
    /// `(c, a)` with a fresh nonce `a`.
    ///
    /// # Errors
    /// [`ProtocolError::Sketch`] when `Rep` fails (wrong helper data or a
    /// reading drifted beyond `t`).
    pub fn respond<R: RngCore + ?Sized>(
        &self,
        bio: &[i64],
        challenge: &IdentChallenge,
        rng: &mut R,
    ) -> Result<IdentResponse, ProtocolError> {
        let fe = self.params.fuzzy_extractor();
        let key = fe.reproduce(bio, &challenge.helper)?;
        let dsa = self.params.dsa();
        let (sk, _vk) = dsa.keypair_from_seed(key.as_bytes());
        let nonce: u64 = rng.gen();
        let msg = challenge_message(challenge.session, challenge.challenge, nonce);
        let signature = dsa.sign(&sk, &msg);
        Ok(IdentResponse {
            session: challenge.session,
            signature: signature.to_bytes(self.params.dsa_params()),
            nonce,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (BiometricDevice, StdRng) {
        (
            BiometricDevice::new(SystemParams::insecure_test_defaults()),
            StdRng::seed_from_u64(321),
        )
    }

    #[test]
    fn enrollment_produces_record() {
        let (device, mut rng) = setup();
        let bio = device.params().sketch().line().random_vector(32, &mut rng);
        let record = device.enroll("user-1", &bio, &mut rng).unwrap();
        assert_eq!(record.id, "user-1");
        assert!(!record.public_key.is_empty());
        assert_eq!(record.helper.sketch.inner.len(), 32);
    }

    #[test]
    fn same_bio_enrolls_with_fresh_randomness() {
        let (device, mut rng) = setup();
        let bio = device.params().sketch().line().random_vector(16, &mut rng);
        let r1 = device.enroll("u", &bio, &mut rng).unwrap();
        let r2 = device.enroll("u", &bio, &mut rng).unwrap();
        // Fresh extractor seed ⇒ different key ⇒ different public key.
        assert_ne!(r1.public_key, r2.public_key);
        assert_ne!(r1.helper.seed, r2.helper.seed);
    }

    #[test]
    fn probe_sketch_has_input_dimension() {
        let (device, mut rng) = setup();
        let bio = device.params().sketch().line().random_vector(20, &mut rng);
        let probe = device.probe_sketch(&bio, &mut rng).unwrap();
        assert_eq!(probe.len(), 20);
        let half = (device.params().sketch().line().interval_len() / 2) as i64;
        assert!(probe.iter().all(|&s| s.abs() <= half));
    }

    #[test]
    fn respond_fails_on_foreign_helper() {
        let (device, mut rng) = setup();
        let bio_a = device.params().sketch().line().random_vector(16, &mut rng);
        let bio_b = device.params().sketch().line().random_vector(16, &mut rng);
        let record = device.enroll("a", &bio_a, &mut rng).unwrap();
        let challenge = IdentChallenge {
            session: 1,
            helper: record.helper,
            challenge: 42,
        };
        assert!(device.respond(&bio_b, &challenge, &mut rng).is_err());
    }
}
