//! Gaussian elimination over GF(2^m), used by the Berlekamp–Welch decoder.

use crate::Gf2m;

/// Solves the linear system given by an augmented matrix `rows` (each row
/// is `[a_1, …, a_m, b]`) over GF(2^m).
///
/// Returns one solution vector of length `m` (free variables set to zero),
/// or `None` if the system is inconsistent.
///
/// ```rust
/// use fe_ecc::{solve_linear_system, Gf2m};
///
/// # fn main() -> Result<(), fe_ecc::CodeError> {
/// let f = Gf2m::new(4)?;
/// // x + y = 3; x = 1  (over GF(16), + is XOR)
/// let rows = vec![vec![1, 1, 3], vec![1, 0, 1]];
/// let sol = solve_linear_system(&f, rows).unwrap();
/// assert_eq!(sol, vec![1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn solve_linear_system(f: &Gf2m, mut rows: Vec<Vec<u16>>) -> Option<Vec<u16>> {
    if rows.is_empty() {
        return Some(Vec::new());
    }
    let cols = rows[0].len() - 1; // last column is the RHS
    debug_assert!(rows.iter().all(|r| r.len() == cols + 1));

    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut pivot_row = 0usize;
    for col in 0..cols {
        // Find a row with a non-zero entry in this column.
        let Some(sel) = (pivot_row..rows.len()).find(|&r| rows[r][col] != 0) else {
            continue;
        };
        rows.swap(pivot_row, sel);
        // Normalize the pivot row.
        let inv = f.inv(rows[pivot_row][col]).expect("pivot non-zero");
        for cell in &mut rows[pivot_row][col..=cols] {
            *cell = f.mul(*cell, inv);
        }
        // Eliminate the column from every other row.
        let pivot_vals = rows[pivot_row][col..=cols].to_vec();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != pivot_row && row[col] != 0 {
                let factor = row[col];
                for (cell, &pv) in row[col..=cols].iter_mut().zip(&pivot_vals) {
                    *cell = f.add(*cell, f.mul(factor, pv));
                }
            }
        }
        pivot_of_col[col] = Some(pivot_row);
        pivot_row += 1;
        if pivot_row == rows.len() {
            break;
        }
    }

    // Inconsistency check: a zero row with non-zero RHS.
    for row in &rows {
        if row[..cols].iter().all(|&v| v == 0) && row[cols] != 0 {
            return None;
        }
    }

    let mut solution = vec![0u16; cols];
    for (col, pivot) in pivot_of_col.iter().enumerate() {
        if let Some(r) = pivot {
            solution[col] = rows[*r][cols];
        }
    }
    Some(solution)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Gf2m {
        Gf2m::new(8).unwrap()
    }

    #[test]
    fn unique_solution() {
        let f = field();
        // 2x + y = 5; x + y = 3  → x = (5 XOR-combination…) verify by
        // substitution instead of hand-solving.
        let rows = vec![vec![2, 1, 5], vec![1, 1, 3]];
        let sol = solve_linear_system(&f, rows.clone()).unwrap();
        for row in &rows {
            let lhs = f.add(f.mul(row[0], sol[0]), f.mul(row[1], sol[1]));
            assert_eq!(lhs, row[2]);
        }
    }

    #[test]
    fn inconsistent_system() {
        let f = field();
        // x + y = 1 and x + y = 2 cannot both hold.
        let rows = vec![vec![1, 1, 1], vec![1, 1, 2]];
        assert_eq!(solve_linear_system(&f, rows), None);
    }

    #[test]
    fn underdetermined_system_gets_some_solution() {
        let f = field();
        let rows = vec![vec![1, 1, 7]];
        let sol = solve_linear_system(&f, rows).unwrap();
        assert_eq!(f.add(sol[0], sol[1]), 7);
    }

    #[test]
    fn overdetermined_consistent() {
        let f = field();
        // Same equation three times.
        let rows = vec![vec![3, 0, 6], vec![3, 0, 6], vec![3, 0, 6]];
        let sol = solve_linear_system(&f, rows).unwrap();
        assert_eq!(f.mul(3, sol[0]), 6);
    }

    #[test]
    fn empty_system() {
        let f = field();
        assert_eq!(solve_linear_system(&f, vec![]), Some(vec![]));
    }

    #[test]
    fn random_square_systems_verify() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let f = field();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.gen_range(1..8usize);
            let x_true: Vec<u16> = (0..n).map(|_| rng.gen_range(0..256)).collect();
            let mut rows = Vec::new();
            for _ in 0..n {
                let coeffs: Vec<u16> = (0..n).map(|_| rng.gen_range(0..256)).collect();
                let rhs = coeffs
                    .iter()
                    .zip(x_true.iter())
                    .fold(0u16, |acc, (&a, &x)| acc ^ f.mul(a, x));
                let mut row = coeffs;
                row.push(rhs);
                rows.push(row);
            }
            let sol = solve_linear_system(&f, rows.clone()).expect("consistent by construction");
            for row in &rows {
                let lhs = row[..n]
                    .iter()
                    .zip(sol.iter())
                    .fold(0u16, |acc, (&a, &x)| acc ^ f.mul(a, x));
                assert_eq!(lhs, row[n]);
            }
        }
    }
}
