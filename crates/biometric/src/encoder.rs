//! Quantization of continuous features onto the discrete number line.

/// Uniform scalar quantizer: maps continuous features in `[min, max]` onto
/// `levels` evenly spaced integer grid points `0..levels`, and back to the
/// cell centre.
///
/// Feature extraction pipelines produce real-valued vectors; the paper's
/// number-line sketch consumes integers. This is the bridging encoder, and
/// the quantization step size determines how real-world measurement noise
/// translates into Chebyshev distance on the line.
///
/// ```rust
/// use fe_biometric::UniformQuantizer;
///
/// let q = UniformQuantizer::new(0.0, 1.0, 100);
/// let level = q.quantize(0.503);
/// assert_eq!(level, 50);
/// assert!((q.dequantize(level) - 0.505).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformQuantizer {
    min: f64,
    max: f64,
    levels: u32,
}

impl UniformQuantizer {
    /// Creates a quantizer over `[min, max]` with `levels` cells.
    ///
    /// # Panics
    /// Panics if `min >= max` or `levels == 0`.
    pub fn new(min: f64, max: f64, levels: u32) -> Self {
        assert!(min < max, "empty quantization range");
        assert!(levels > 0, "need at least one level");
        UniformQuantizer { min, max, levels }
    }

    /// Cell width.
    pub fn step(&self) -> f64 {
        (self.max - self.min) / self.levels as f64
    }

    /// Maps a feature value to its cell index in `[0, levels)`.
    /// Values outside the range are clamped.
    pub fn quantize(&self, value: f64) -> i64 {
        let clamped = value.clamp(self.min, self.max);
        let idx = ((clamped - self.min) / self.step()).floor() as i64;
        idx.min(self.levels as i64 - 1)
    }

    /// Maps a vector of features.
    pub fn quantize_vec(&self, values: &[f64]) -> Vec<i64> {
        values.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Returns the centre of cell `level`.
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    pub fn dequantize(&self, level: i64) -> f64 {
        assert!(
            (0..self.levels as i64).contains(&level),
            "level {level} out of range"
        );
        self.min + (level as f64 + 0.5) * self.step()
    }

    /// How many cells a continuous perturbation of magnitude `delta` can
    /// move a feature by, in the worst case: `ceil(delta / step)`.
    ///
    /// Useful for choosing the sketch threshold `t` from a sensor noise
    /// specification.
    pub fn worst_case_cell_shift(&self, delta: f64) -> u64 {
        (delta / self.step()).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_boundaries() {
        let q = UniformQuantizer::new(0.0, 10.0, 10);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(0.999), 0);
        assert_eq!(q.quantize(1.0), 1);
        assert_eq!(q.quantize(9.999), 9);
        assert_eq!(q.quantize(10.0), 9); // top edge clamps into last cell
    }

    #[test]
    fn out_of_range_clamps() {
        let q = UniformQuantizer::new(-1.0, 1.0, 4);
        assert_eq!(q.quantize(-5.0), 0);
        assert_eq!(q.quantize(5.0), 3);
    }

    #[test]
    fn dequantize_is_cell_center() {
        let q = UniformQuantizer::new(0.0, 1.0, 2);
        assert!((q.dequantize(0) - 0.25).abs() < 1e-12);
        assert!((q.dequantize(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let q = UniformQuantizer::new(-3.0, 3.0, 600);
        for i in 0..100 {
            let v = -3.0 + 6.0 * (i as f64) / 99.0;
            let rt = q.dequantize(q.quantize(v));
            assert!((rt - v).abs() <= q.step() / 2.0 + 1e-12, "v={v}");
        }
    }

    #[test]
    fn vector_quantization() {
        let q = UniformQuantizer::new(0.0, 1.0, 10);
        assert_eq!(q.quantize_vec(&[0.05, 0.55, 0.95]), vec![0, 5, 9]);
    }

    #[test]
    fn worst_case_shift() {
        let q = UniformQuantizer::new(0.0, 100.0, 100); // step = 1
        assert_eq!(q.worst_case_cell_shift(2.5), 3);
        assert_eq!(q.worst_case_cell_shift(1.0), 1);
        assert_eq!(q.worst_case_cell_shift(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "empty quantization range")]
    fn bad_range_panics() {
        UniformQuantizer::new(1.0, 1.0, 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dequantize_out_of_range_panics() {
        UniformQuantizer::new(0.0, 1.0, 4).dequantize(4);
    }
}
