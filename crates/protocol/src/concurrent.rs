//! A thread-safe server wrapper: many biometric devices identifying
//! against one authentication server concurrently.
//!
//! The ICDCS venue is a distributed-computing conference; a production
//! authentication server handles concurrent identification sessions. The
//! wrapper serializes mutations behind a `parking_lot::RwLock` while
//! letting the (immutable) parameter reads proceed in parallel.

use crate::messages::{EnrollmentRecord, IdentChallenge, IdentOutcome, IdentResponse};
use crate::params::SystemParams;
use crate::server::AuthenticationServer;
use crate::ProtocolError;
use parking_lot::RwLock;
use rand::RngCore;
use std::sync::Arc;

/// A cloneable, thread-safe handle to a shared [`AuthenticationServer`].
#[derive(Debug, Clone)]
pub struct SharedServer {
    inner: Arc<RwLock<AuthenticationServer>>,
    params: SystemParams,
}

impl SharedServer {
    /// Creates a shared server.
    pub fn new(params: SystemParams) -> Self {
        SharedServer {
            inner: Arc::new(RwLock::new(AuthenticationServer::new(params.clone()))),
            params,
        }
    }

    /// The system parameters (lock-free).
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Enrolls a record.
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::enroll`].
    pub fn enroll(&self, record: EnrollmentRecord) -> Result<(), ProtocolError> {
        self.inner.write().enroll(record)
    }

    /// Identification phase 1.
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::begin_identification`].
    pub fn begin_identification<R: RngCore + ?Sized>(
        &self,
        probe: &[i64],
        rng: &mut R,
    ) -> Result<IdentChallenge, ProtocolError> {
        self.inner.write().begin_identification(probe, rng)
    }

    /// Verification phase 1 (claimed identity).
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::begin_verification`].
    pub fn begin_verification<R: RngCore + ?Sized>(
        &self,
        claimed_id: &str,
        rng: &mut R,
    ) -> Result<IdentChallenge, ProtocolError> {
        self.inner.write().begin_verification(claimed_id, rng)
    }

    /// Phase 2: verify the response.
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::finish_identification`].
    pub fn finish_identification(
        &self,
        response: &IdentResponse,
    ) -> Result<IdentOutcome, ProtocolError> {
        self.inner.write().finish_identification(response)
    }

    /// Number of enrolled users.
    pub fn user_count(&self) -> usize {
        self.inner.read().user_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BiometricDevice;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn concurrent_identifications_succeed() {
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::new(params.clone());
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(808);

        let users = 8usize;
        let mut bios = Vec::new();
        for u in 0..users {
            let bio = params.sketch().line().random_vector(32, &mut rng);
            server
                .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
                .unwrap();
            bios.push(bio);
        }
        assert_eq!(server.user_count(), users);

        crossbeam::scope(|scope| {
            for (u, bio) in bios.iter().enumerate() {
                let server = server.clone();
                let device = device.clone();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(9_000 + u as u64);
                    let reading: Vec<i64> =
                        bio.iter().map(|&x| x + rng.gen_range(-80i64..=80)).collect();
                    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                    let chal = server.begin_identification(&probe, &mut rng).unwrap();
                    let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                    let outcome = server.finish_identification(&resp).unwrap();
                    assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                });
            }
        })
        .expect("threads must not panic");
    }

    #[test]
    fn concurrent_enrollments_all_land() {
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::new(params.clone());
        let device = BiometricDevice::new(params.clone());

        crossbeam::scope(|scope| {
            for u in 0..16 {
                let server = server.clone();
                let device = device.clone();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(42 + u as u64);
                    let bio = device.params().sketch().line().random_vector(16, &mut rng);
                    server
                        .enroll(device.enroll(&format!("c-{u}"), &bio, &mut rng).unwrap())
                        .unwrap();
                });
            }
        })
        .expect("threads must not panic");
        assert_eq!(server.user_count(), 16);
    }
}
