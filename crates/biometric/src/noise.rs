//! Reading-noise models: how a fresh biometric presentation differs from
//! the enrolled template.

use rand::Rng;
use rand::RngCore;

/// A model of per-reading sensor/extraction noise.
pub trait NoiseModel {
    /// Produces a noisy reading of `template`.
    fn perturb<R: RngCore + ?Sized>(&self, template: &[i64], rng: &mut R) -> Vec<i64>;
}

/// No noise: the reading equals the template exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoNoise;

impl NoiseModel for NoNoise {
    fn perturb<R: RngCore + ?Sized>(&self, template: &[i64], _rng: &mut R) -> Vec<i64> {
        template.to_vec()
    }
}

/// Bounded uniform noise: each coordinate moves by an independent uniform
/// offset in `[-max_dev, max_dev]`.
///
/// With `max_dev <= t` this guarantees the reading stays within the
/// paper's Chebyshev threshold, so genuine users always pass — the model
/// used for the performance experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformNoise {
    max_dev: u64,
}

impl UniformNoise {
    /// Creates the model with the given maximum per-coordinate deviation.
    pub fn new(max_dev: u64) -> Self {
        UniformNoise { max_dev }
    }

    /// The maximum deviation.
    pub fn max_dev(&self) -> u64 {
        self.max_dev
    }
}

impl NoiseModel for UniformNoise {
    fn perturb<R: RngCore + ?Sized>(&self, template: &[i64], rng: &mut R) -> Vec<i64> {
        let d = self.max_dev as i64;
        template
            .iter()
            .map(|&x| x + rng.gen_range(-d..=d))
            .collect()
    }
}

/// Truncated Gaussian noise: offsets are normal with standard deviation
/// `sigma`, clipped to `[-clip, clip]`.
///
/// Unlike [`UniformNoise`], a genuine reading can exceed the matcher's
/// threshold when `clip > t` — this is the model behind the FRR
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianNoise {
    sigma: f64,
    clip: u64,
}

impl GaussianNoise {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64, clip: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and >= 0"
        );
        GaussianNoise { sigma, clip }
    }

    /// Standard normal sample via Box–Muller.
    fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }
}

impl NoiseModel for GaussianNoise {
    fn perturb<R: RngCore + ?Sized>(&self, template: &[i64], rng: &mut R) -> Vec<i64> {
        let clip = self.clip as f64;
        template
            .iter()
            .map(|&x| {
                let offset = (Self::standard_normal(rng) * self.sigma).clamp(-clip, clip);
                x + offset.round() as i64
            })
            .collect()
    }
}

/// Burst noise: base bounded-uniform noise, but each coordinate
/// independently suffers a large outlier with probability `burst_prob`
/// (modeling feature-extraction glitches). Outliers move the coordinate by
/// up to `burst_dev`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstNoise {
    base: UniformNoise,
    burst_prob: f64,
    burst_dev: u64,
}

impl BurstNoise {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if `burst_prob` is outside `[0, 1]`.
    pub fn new(base_dev: u64, burst_prob: f64, burst_dev: u64) -> Self {
        assert!((0.0..=1.0).contains(&burst_prob), "probability in [0,1]");
        BurstNoise {
            base: UniformNoise::new(base_dev),
            burst_prob,
            burst_dev,
        }
    }
}

impl NoiseModel for BurstNoise {
    fn perturb<R: RngCore + ?Sized>(&self, template: &[i64], rng: &mut R) -> Vec<i64> {
        let mut out = self.base.perturb(template, rng);
        let d = self.burst_dev as i64;
        for v in out.iter_mut() {
            if rng.gen_bool(self.burst_prob) {
                *v += rng.gen_range(-d..=d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    fn max_abs_dev(a: &[i64], b: &[i64]) -> u64 {
        a.iter().zip(b).map(|(x, y)| x.abs_diff(*y)).max().unwrap()
    }

    #[test]
    fn no_noise_is_identity() {
        let t = vec![1, -2, 3];
        assert_eq!(NoNoise.perturb(&t, &mut rng()), t);
    }

    #[test]
    fn uniform_noise_bounded() {
        let mut r = rng();
        let t: Vec<i64> = (0..1000).map(|i| i * 7 - 3500).collect();
        for dev in [0u64, 1, 50, 100] {
            let reading = UniformNoise::new(dev).perturb(&t, &mut r);
            assert!(max_abs_dev(&t, &reading) <= dev, "dev={dev}");
        }
    }

    #[test]
    fn uniform_noise_actually_moves_points() {
        let mut r = rng();
        let t = vec![0i64; 1000];
        let reading = UniformNoise::new(100).perturb(&t, &mut r);
        let moved = reading.iter().filter(|&&v| v != 0).count();
        assert!(moved > 900, "uniform noise barely moved anything: {moved}");
    }

    #[test]
    fn gaussian_noise_respects_clip() {
        let mut r = rng();
        let t = vec![0i64; 5000];
        let reading = GaussianNoise::new(500.0, 100).perturb(&t, &mut r);
        assert!(max_abs_dev(&t, &reading) <= 100);
    }

    #[test]
    fn gaussian_sigma_zero_is_identity() {
        let mut r = rng();
        let t = vec![5i64, -7, 9];
        assert_eq!(GaussianNoise::new(0.0, 10).perturb(&t, &mut r), t);
    }

    #[test]
    fn gaussian_spread_scales_with_sigma() {
        let mut r = rng();
        let t = vec![0i64; 2000];
        let small: i64 = GaussianNoise::new(5.0, 1000)
            .perturb(&t, &mut r)
            .iter()
            .map(|v| v.abs())
            .sum();
        let large: i64 = GaussianNoise::new(50.0, 1000)
            .perturb(&t, &mut r)
            .iter()
            .map(|v| v.abs())
            .sum();
        assert!(
            large > small * 5,
            "sigma scaling broken: {small} vs {large}"
        );
    }

    #[test]
    fn burst_noise_produces_outliers() {
        let mut r = rng();
        let t = vec![0i64; 2000];
        let reading = BurstNoise::new(10, 0.05, 10_000).perturb(&t, &mut r);
        let outliers = reading.iter().filter(|v| v.abs() > 100).count();
        // ~5% of 2000 = 100 expected; accept a generous band.
        assert!((30..300).contains(&outliers), "outliers={outliers}");
    }

    #[test]
    fn burst_prob_zero_equals_base() {
        let t = vec![7i64; 100];
        let mut r1 = rng();
        let mut r2 = rng();
        let a = BurstNoise::new(3, 0.0, 9999).perturb(&t, &mut r1);
        let b = UniformNoise::new(3).perturb(&t, &mut r2);
        assert_eq!(a, b);
    }
}
