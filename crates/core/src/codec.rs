//! Canonical, versioned binary codec for durable sketch storage.
//!
//! The paper's security model makes helper data *public*: the sketch `s`
//! and the extractor seed leak at most the Theorem 3 entropy loss, so a
//! server may persist enrollment records to disk without weakening the
//! scheme. What persistence *does* demand is an on-disk contract that
//! outlives process restarts and parameter evolution:
//!
//! * **Magic + format version** — a recovering server must detect foreign
//!   files and refuse formats it does not understand, instead of
//!   misparsing them into plausible-looking records.
//! * **Parameter fingerprint** — a sketch is only meaningful relative to
//!   the [`NumberLine`](crate::NumberLine) and threshold it was produced
//!   under. Every durable artifact embeds a [`Fingerprint`] of the system
//!   parameters; decoding under mismatched parameters fails loudly
//!   ([`CodecError::FingerprintMismatch`]) rather than silently matching
//!   probes against a re-interpreted ring.
//! * **Length-prefixed fields + CRC framing** — every variable-length
//!   field is length-prefixed (injective, no delimiter parsing), and the
//!   append-only journal layered on top frames each entry with a CRC32 so
//!   a torn tail write is distinguishable from corruption
//!   ([`crc32`], [`Writer::put_framed`], [`Reader::get_framed`]).
//!
//! The module exposes two layers: raw [`Writer`]/[`Reader`] primitives
//! (big-endian, length-prefixed) used by `fe-protocol`'s enrollment log,
//! and ready-made codecs for the core types ([`encode_sketch`],
//! [`encode_helper`]).
//!
//! ```rust
//! use fe_core::codec::{decode_sketch, encode_sketch, Fingerprint};
//!
//! let fp = Fingerprint::of(b"params: a=100 k=4 v=500 t=100");
//! let sketch = vec![-200i64, 137, 0, 55];
//! let bytes = encode_sketch(&sketch, &fp);
//! assert_eq!(decode_sketch(&bytes, &fp).unwrap(), sketch);
//!
//! // The same bytes refuse to decode under different parameters.
//! let other = Fingerprint::of(b"params: a=50 k=8 v=250 t=20");
//! assert!(decode_sketch(&bytes, &other).is_err());
//! ```

use crate::fuzzy::HelperData;
use crate::robust::RobustData;
use fe_crypto::{Digest, Sha256};
use std::error::Error;
use std::fmt;

/// Magic prefix shared by every durable artifact of this workspace.
pub const MAGIC: [u8; 4] = *b"FECD";

/// Current on-disk format version. Bump on any incompatible layout
/// change; decoders reject versions they do not know.
pub const FORMAT_VERSION: u16 = 1;

/// Artifact kind tags carried in the header, so a snapshot can never be
/// replayed as a journal (and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ArtifactKind {
    /// A bare sketch vector.
    Sketch = 1,
    /// Helper data (robust sketch + extractor seed).
    Helper = 2,
    /// Reserved for a future standalone enrollment-record artifact.
    /// No current writer produces it: `fe-protocol` embeds records
    /// headerless inside journal frames and snapshot rows. The tag is
    /// reserved so it can never be reassigned to a different layout.
    Record = 3,
    /// A compacted snapshot of all live records.
    Snapshot = 4,
    /// An append-only enrollment/revocation journal.
    Journal = 5,
    /// A sealed-segment cache: the epoch index's sealed columnar
    /// segments exported verbatim alongside a snapshot, so recovery
    /// maps them back in instead of rebuilding the index row by row.
    Segment = 6,
}

impl ArtifactKind {
    fn from_u8(b: u8) -> Option<ArtifactKind> {
        Some(match b {
            1 => ArtifactKind::Sketch,
            2 => ArtifactKind::Helper,
            3 => ArtifactKind::Record,
            4 => ArtifactKind::Snapshot,
            5 => ArtifactKind::Journal,
            6 => ArtifactKind::Segment,
            _ => return None,
        })
    }
}

/// Decoding failures for durable artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the structure requires.
    Truncated,
    /// The magic prefix is not [`MAGIC`] — not one of our files.
    BadMagic,
    /// A format version this build does not understand.
    UnsupportedVersion(u16),
    /// The artifact kind tag does not match what the caller expected.
    WrongKind {
        /// The kind the caller asked to decode.
        expected: ArtifactKind,
        /// The tag byte actually present in the header.
        found: u8,
    },
    /// The artifact was produced under different system parameters.
    FingerprintMismatch {
        /// Fingerprint the decoder was configured with.
        expected: Fingerprint,
        /// Fingerprint stored in the artifact.
        found: Fingerprint,
    },
    /// A CRC-framed entry failed its checksum (torn or corrupt write).
    BadChecksum,
    /// Structurally invalid contents.
    Malformed(&'static str),
    /// Well-formed prefix followed by unexpected trailing bytes.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadMagic => write!(f, "bad magic (not a fuzzy-id artifact)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong artifact kind: expected {expected:?}, found {found}"
                )
            }
            CodecError::FingerprintMismatch { expected, found } => write!(
                f,
                "system-parameter fingerprint mismatch: expected {expected}, found {found}"
            ),
            CodecError::BadChecksum => write!(f, "checksum mismatch (torn or corrupt entry)"),
            CodecError::Malformed(what) => write!(f, "malformed artifact: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after artifact"),
        }
    }
}

impl Error for CodecError {}

/// An 8-byte digest of the system parameters, embedded in every durable
/// artifact so recovery under mismatched parameters fails loudly.
///
/// Fingerprints are *identifiers*, not authenticators: they detect
/// configuration drift, not tampering (helper data is public and the
/// robust sketch's own hash tag covers integrity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub [u8; 8]);

impl Fingerprint {
    /// Derives a fingerprint from a canonical parameter encoding
    /// (SHA-256, truncated to 8 bytes).
    pub fn of(canonical: &[u8]) -> Fingerprint {
        let mut h = Sha256::new();
        h.update(b"fe-fingerprint-v1");
        h.update(canonical);
        let digest = h.finalize();
        let mut out = [0u8; 8];
        out.copy_from_slice(&digest[..8]);
        Fingerprint(out)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 8] {
        &self.0
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the classic
/// frame checksum, used to detect torn journal tail writes.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Big-endian, length-prefixed binary writer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Empties the buffer, keeping its allocation — so per-row encoding
    /// loops (snapshot streaming) reuse one writer instead of
    /// allocating per row.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Writes the artifact header: magic, version, kind, fingerprint.
    pub fn put_header(&mut self, kind: ArtifactKind, fingerprint: &Fingerprint) {
        self.buf.extend_from_slice(&MAGIC);
        self.put_u16(FORMAT_VERSION);
        self.put_u8(kind as u8);
        self.buf.extend_from_slice(fingerprint.as_bytes());
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.buf.extend_from_slice(data);
    }

    /// Appends a UTF-8 string, length-prefixed.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends an `i64` vector, length-prefixed.
    pub fn put_i64s(&mut self, v: &[i64]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_i64(x);
        }
    }

    /// Appends a CRC-framed payload: `len (u32) ‖ crc32 (u32) ‖ payload`.
    ///
    /// This is the journal-entry frame: an interrupted write leaves either
    /// a short frame (caught by the length) or a payload whose checksum
    /// fails — both recognized as a torn tail by [`Reader::get_framed`].
    pub fn put_framed(&mut self, payload: &[u8]) {
        self.put_u32(payload.len() as u32);
        self.put_u32(crc32(payload));
        self.buf.extend_from_slice(payload);
    }

    /// The serialized bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Big-endian, length-prefixed binary reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current read offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads and validates an artifact header written by
    /// [`Writer::put_header`].
    ///
    /// # Errors
    /// [`CodecError::BadMagic`] / [`CodecError::UnsupportedVersion`] /
    /// [`CodecError::WrongKind`] / [`CodecError::FingerprintMismatch`]
    /// in validation order, so the most fundamental mismatch is reported.
    pub fn read_header(
        &mut self,
        kind: ArtifactKind,
        fingerprint: &Fingerprint,
    ) -> Result<(), CodecError> {
        let magic = self.take(4)?;
        if magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = self.get_u16()?;
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let tag = self.get_u8()?;
        if ArtifactKind::from_u8(tag) != Some(kind) {
            return Err(CodecError::WrongKind {
                expected: kind,
                found: tag,
            });
        }
        let mut found = [0u8; 8];
        found.copy_from_slice(self.take(8)?);
        let found = Fingerprint(found);
        if &found != fingerprint {
            return Err(CodecError::FingerprintMismatch {
                expected: *fingerprint,
                found,
            });
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a big-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| CodecError::Malformed("not utf-8"))
    }

    /// Reads a length-prefixed `i64` vector.
    pub fn get_i64s(&mut self) -> Result<Vec<i64>, CodecError> {
        let len = self.get_u32()? as usize;
        if self.remaining() < len.saturating_mul(8) {
            return Err(CodecError::Truncated);
        }
        (0..len).map(|_| self.get_i64()).collect()
    }

    /// Reads one CRC-framed payload written by [`Writer::put_framed`].
    ///
    /// # Errors
    /// [`CodecError::Truncated`] when the frame header or payload is cut
    /// short; [`CodecError::BadChecksum`] when the payload does not match
    /// its CRC. Journal replay treats *either* error at the tail as a
    /// torn final write and truncates there.
    pub fn get_framed(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        let crc = self.get_u32()?;
        let payload = self.take(len)?;
        if crc32(payload) != crc {
            return Err(CodecError::BadChecksum);
        }
        Ok(payload)
    }
}

/// Encodes a bare sketch vector as a self-describing durable artifact.
pub fn encode_sketch(sketch: &[i64], fingerprint: &Fingerprint) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_header(ArtifactKind::Sketch, fingerprint);
    w.put_i64s(sketch);
    w.into_bytes()
}

/// Decodes a sketch encoded by [`encode_sketch`], validating magic,
/// version and parameter fingerprint.
///
/// # Errors
/// Any [`CodecError`] raised by header validation or truncation.
pub fn decode_sketch(bytes: &[u8], fingerprint: &Fingerprint) -> Result<Vec<i64>, CodecError> {
    let mut r = Reader::new(bytes);
    r.read_header(ArtifactKind::Sketch, fingerprint)?;
    let sketch = r.get_i64s()?;
    r.expect_end()?;
    Ok(sketch)
}

/// The helper-data shape the paper's default stack produces: robust
/// Chebyshev sketch (movement vector + binding tag) plus extractor seed.
pub type CanonicalHelper = HelperData<RobustData<Vec<i64>>>;

/// Writes helper data fields (no header — callers embed this in larger
/// records; see [`encode_helper`] for the standalone artifact).
pub fn put_helper(w: &mut Writer, helper: &CanonicalHelper) {
    w.put_i64s(&helper.sketch.inner);
    w.put_bytes(&helper.sketch.tag);
    w.put_bytes(&helper.seed);
}

/// Reads helper-data fields written by [`put_helper`].
///
/// # Errors
/// [`CodecError::Truncated`] on short input.
pub fn get_helper(r: &mut Reader<'_>) -> Result<CanonicalHelper, CodecError> {
    let inner = r.get_i64s()?;
    let tag = r.get_bytes()?;
    let seed = r.get_bytes()?;
    Ok(HelperData {
        sketch: RobustData { inner, tag },
        seed,
    })
}

/// Encodes helper data as a standalone self-describing artifact.
pub fn encode_helper(helper: &CanonicalHelper, fingerprint: &Fingerprint) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_header(ArtifactKind::Helper, fingerprint);
    put_helper(&mut w, helper);
    w.into_bytes()
}

/// Decodes helper data encoded by [`encode_helper`].
///
/// # Errors
/// Any [`CodecError`] raised by header validation or truncation.
pub fn decode_helper(
    bytes: &[u8],
    fingerprint: &Fingerprint,
) -> Result<CanonicalHelper, CodecError> {
    let mut r = Reader::new(bytes);
    r.read_header(ArtifactKind::Helper, fingerprint)?;
    let helper = get_helper(&mut r)?;
    r.expect_end()?;
    Ok(helper)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Fingerprint {
        Fingerprint::of(b"test params")
    }

    #[test]
    fn sketch_roundtrip() {
        for sketch in [vec![], vec![0i64], vec![i64::MIN, -1, 0, 1, i64::MAX]] {
            let bytes = encode_sketch(&sketch, &fp());
            assert_eq!(decode_sketch(&bytes, &fp()).unwrap(), sketch);
        }
    }

    #[test]
    fn helper_roundtrip() {
        let helper = CanonicalHelper {
            sketch: RobustData {
                inner: vec![-200, 137, 0],
                tag: vec![7; 32],
            },
            seed: vec![1, 2, 3],
        };
        let bytes = encode_helper(&helper, &fp());
        assert_eq!(decode_helper(&bytes, &fp()).unwrap(), helper);
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let bytes = encode_sketch(&[1, 2, 3], &fp());
        let other = Fingerprint::of(b"other params");
        assert!(matches!(
            decode_sketch(&bytes, &other),
            Err(CodecError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn header_validation_order() {
        let good = encode_sketch(&[5], &fp());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_sketch(&bad, &fp()), Err(CodecError::BadMagic));
        // Bad version.
        let mut bad = good.clone();
        bad[5] = 0xff;
        assert!(matches!(
            decode_sketch(&bad, &fp()),
            Err(CodecError::UnsupportedVersion(_))
        ));
        // Wrong kind: a helper artifact refuses to decode as a sketch.
        let helper_bytes = encode_helper(
            &CanonicalHelper {
                sketch: RobustData {
                    inner: vec![],
                    tag: vec![],
                },
                seed: vec![],
            },
            &fp(),
        );
        assert!(matches!(
            decode_sketch(&helper_bytes, &fp()),
            Err(CodecError::WrongKind { .. })
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = encode_helper(
            &CanonicalHelper {
                sketch: RobustData {
                    inner: vec![1, 2, 3],
                    tag: vec![9; 16],
                },
                seed: vec![4; 8],
            },
            &fp(),
        );
        for cut in 0..bytes.len() {
            assert!(
                decode_helper(&bytes[..cut], &fp()).is_err(),
                "prefix {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_sketch(&[1], &fp());
        bytes.push(0);
        assert_eq!(decode_sketch(&bytes, &fp()), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn framed_payload_roundtrip_and_torn_detection() {
        let mut w = Writer::new();
        w.put_framed(b"hello");
        w.put_framed(b"");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_framed().unwrap(), b"hello");
        assert_eq!(r.get_framed().unwrap(), b"");
        assert!(r.is_empty());

        // A flipped payload byte fails the checksum…
        let mut corrupt = bytes.clone();
        corrupt[9] ^= 0xff;
        assert_eq!(
            Reader::new(&corrupt).get_framed(),
            Err(CodecError::BadChecksum)
        );
        // …and every truncation point reads as a torn frame.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let first = r.get_framed();
            if cut < 13 {
                assert!(first.is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn fingerprint_display_and_stability() {
        let a = Fingerprint::of(b"abc");
        let b = Fingerprint::of(b"abc");
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 16);
        assert_ne!(a, Fingerprint::of(b"abd"));
    }

    #[test]
    fn reader_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX);
        w.put_i64(-5);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -5);
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }
}
