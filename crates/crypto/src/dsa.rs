//! DSA (FIPS 186-4 style) over the `fe-bigint` substrate.
//!
//! This is the signature scheme named in the paper's Table II. Nonces are
//! derived deterministically from the signing key and message digest
//! (RFC-6979 style), which keeps signatures safe against the classic DSA
//! nonce-reuse failure and makes protocol runs reproducible.

use crate::sig::SignatureScheme;
use crate::{Digest, HmacDrbg, Sha256};
use fe_bigint::{gen_prime, random_below, random_bits, Natural};
use rand::RngCore;
use std::fmt;
use std::sync::OnceLock;

/// DSA domain parameters `(p, q, g)`: `p` prime, `q` prime dividing `p-1`,
/// `g` a generator of the order-`q` subgroup of `Z_p^*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsaParams {
    p: Natural,
    q: Natural,
    g: Natural,
}

/// Errors from DSA parameter validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `p` failed the primality test.
    PNotPrime,
    /// `q` failed the primality test.
    QNotPrime,
    /// `q` does not divide `p - 1`.
    QDoesNotDivide,
    /// `g` is not a generator of the order-`q` subgroup.
    BadGenerator,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::PNotPrime => write!(f, "modulus p is not prime"),
            ParamError::QNotPrime => write!(f, "subgroup order q is not prime"),
            ParamError::QDoesNotDivide => write!(f, "q does not divide p - 1"),
            ParamError::BadGenerator => write!(f, "g does not generate the order-q subgroup"),
        }
    }
}

impl std::error::Error for ParamError {}

impl DsaParams {
    /// Generates fresh domain parameters with an `l_bits` modulus and an
    /// `n_bits` subgroup order.
    ///
    /// # Panics
    /// Panics if `n_bits >= l_bits` or `n_bits < 2`.
    pub fn generate<R: RngCore + ?Sized>(l_bits: usize, n_bits: usize, rng: &mut R) -> DsaParams {
        assert!(n_bits >= 2 && n_bits < l_bits, "need 2 <= n_bits < l_bits");
        let q = gen_prime(n_bits, 32, rng);
        let two_q = q.shl_bits(1);
        let p = loop {
            // Random L-bit candidate, forced odd congruent to 1 mod 2q.
            let x = random_bits(l_bits, rng).with_bit(l_bits - 1, true);
            let rem = x.rem_nat(&two_q);
            let cand = match x.checked_sub(&rem) {
                Some(base) => base.add_u64(1),
                None => continue,
            };
            if cand.bit_length() != l_bits {
                continue;
            }
            if cand.is_probable_prime(32, rng) {
                break cand;
            }
        };
        let p_minus_1 = p.checked_sub(&Natural::one()).expect("p >= 2");
        let exp = &p_minus_1 / &q;
        let mut h = Natural::two();
        let g = loop {
            let cand = h.mod_pow(&exp, &p);
            if !cand.is_one() && !cand.is_zero() {
                break cand;
            }
            h = h.add_u64(1);
        };
        DsaParams { p, q, g }
    }

    /// Deterministically generates parameters from a seed string
    /// (convenient for reproducible tests and benchmarks).
    pub fn generate_deterministic(l_bits: usize, n_bits: usize, seed: &[u8]) -> DsaParams {
        let mut drbg = HmacDrbg::new(seed, b"fe-dsa-param-gen");
        DsaParams::generate(l_bits, n_bits, &mut drbg)
    }

    /// Builds parameters from raw components without validation.
    /// Prefer [`DsaParams::validate`] afterwards for untrusted inputs.
    pub fn from_parts(p: Natural, q: Natural, g: Natural) -> DsaParams {
        DsaParams { p, q, g }
    }

    /// Validates primality of `p` and `q`, the divisibility relation and
    /// the generator order.
    ///
    /// # Errors
    /// Returns the first failed check as a [`ParamError`].
    pub fn validate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Result<(), ParamError> {
        if !self.p.is_probable_prime(32, rng) {
            return Err(ParamError::PNotPrime);
        }
        if !self.q.is_probable_prime(32, rng) {
            return Err(ParamError::QNotPrime);
        }
        let p_minus_1 = self.p.checked_sub(&Natural::one()).expect("p >= 2");
        if !p_minus_1.rem_nat(&self.q).is_zero() {
            return Err(ParamError::QDoesNotDivide);
        }
        if self.g.is_zero() || self.g.is_one() || !self.g.mod_pow(&self.q, &self.p).is_one() {
            return Err(ParamError::BadGenerator);
        }
        Ok(())
    }

    /// The prime modulus `p`.
    pub fn p(&self) -> &Natural {
        &self.p
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> &Natural {
        &self.q
    }

    /// The subgroup generator `g`.
    pub fn g(&self) -> &Natural {
        &self.g
    }

    /// `(L, N)` — bit lengths of `p` and `q`.
    pub fn bits(&self) -> (usize, usize) {
        (self.p.bit_length(), self.q.bit_length())
    }

    /// Byte length of a serialized subgroup scalar.
    pub fn scalar_len(&self) -> usize {
        self.q.bit_length().div_ceil(8)
    }

    /// Byte length of a serialized group element.
    pub fn element_len(&self) -> usize {
        self.p.bit_length().div_ceil(8)
    }

    /// Cached deterministic parameters with a 512-bit modulus.
    ///
    /// **Test/bench strength only** — far below modern security margins,
    /// but fast enough for exhaustive protocol test suites.
    pub fn insecure_512() -> &'static DsaParams {
        static PARAMS: OnceLock<DsaParams> = OnceLock::new();
        PARAMS.get_or_init(|| DsaParams::generate_deterministic(512, 160, b"fe-dsa-512-fixed"))
    }

    /// Cached deterministic parameters with a 1024-bit modulus and 160-bit
    /// subgroup (the classic DSA size; matches the paper's era and DSA
    /// default in the Python standard library used by the authors).
    pub fn dsa_1024_160() -> &'static DsaParams {
        static PARAMS: OnceLock<DsaParams> = OnceLock::new();
        PARAMS.get_or_init(|| DsaParams::generate_deterministic(1024, 160, b"fe-dsa-1024-fixed"))
    }

    /// Cached deterministic parameters with a 2048-bit modulus and 256-bit
    /// subgroup (modern DSA strength).
    pub fn dsa_2048_256() -> &'static DsaParams {
        static PARAMS: OnceLock<DsaParams> = OnceLock::new();
        PARAMS.get_or_init(|| DsaParams::generate_deterministic(2048, 256, b"fe-dsa-2048-fixed"))
    }

    /// Reduces a message to the scalar `z`: the leftmost `N` bits of
    /// SHA-256(msg), as specified by FIPS 186-4 §4.6.
    pub(crate) fn hash_to_scalar(&self, msg: &[u8]) -> Natural {
        let digest = Sha256::digest(msg);
        let n_bits = self.q.bit_length();
        let take = n_bits.div_ceil(8).min(digest.len());
        let mut z = Natural::from_bytes_be(&digest[..take]);
        let excess = (take * 8).saturating_sub(n_bits);
        if excess > 0 {
            z = z.shr_bits(excess);
        }
        z
    }

    /// Derives a scalar in `[1, q-1]` from seed bytes via HMAC-DRBG.
    pub(crate) fn scalar_from_seed(&self, seed: &[u8], label: &[u8]) -> Natural {
        let mut drbg = HmacDrbg::new(seed, label);
        let q_minus_1 = self.q.checked_sub(&Natural::one()).expect("q >= 2");
        &random_below(&q_minus_1, &mut drbg) + &Natural::one()
    }
}

/// DSA signing key (the secret scalar `x`).
#[derive(Clone)]
pub struct DsaSigningKey {
    x: Natural,
}

impl fmt::Debug for DsaSigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret scalar.
        f.debug_struct("DsaSigningKey").finish_non_exhaustive()
    }
}

/// DSA verification key (the public element `y = g^x mod p`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsaVerifyingKey {
    y: Natural,
}

impl DsaVerifyingKey {
    /// The public element `y`.
    pub fn y(&self) -> &Natural {
        &self.y
    }

    /// Serializes as fixed-width big-endian bytes.
    pub fn to_bytes(&self, params: &DsaParams) -> Vec<u8> {
        self.y.to_bytes_be_padded(params.element_len())
    }

    /// Deserializes from big-endian bytes.
    pub fn from_bytes(bytes: &[u8]) -> DsaVerifyingKey {
        DsaVerifyingKey {
            y: Natural::from_bytes_be(bytes),
        }
    }
}

/// A DSA signature `(r, s)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsaSignature {
    r: Natural,
    s: Natural,
}

impl DsaSignature {
    /// The `r` component.
    pub fn r(&self) -> &Natural {
        &self.r
    }

    /// The `s` component.
    pub fn s(&self) -> &Natural {
        &self.s
    }

    /// Serializes as `r || s`, each padded to the scalar width.
    pub fn to_bytes(&self, params: &DsaParams) -> Vec<u8> {
        let len = params.scalar_len();
        let mut out = self.r.to_bytes_be_padded(len);
        out.extend(self.s.to_bytes_be_padded(len));
        out
    }

    /// Parses `r || s`; `None` if the length is not exactly two scalars.
    pub fn from_bytes(bytes: &[u8], params: &DsaParams) -> Option<DsaSignature> {
        let len = params.scalar_len();
        if bytes.len() != 2 * len {
            return None;
        }
        Some(DsaSignature {
            r: Natural::from_bytes_be(&bytes[..len]),
            s: Natural::from_bytes_be(&bytes[len..]),
        })
    }
}

/// The DSA scheme over fixed domain parameters.
///
/// ```rust
/// use fe_crypto::dsa::{Dsa, DsaParams};
/// use fe_crypto::sig::SignatureScheme;
///
/// let dsa = Dsa::new(DsaParams::insecure_512().clone());
/// let (sk, vk) = dsa.keypair_from_seed(b"extracted biometric key R");
/// let sig = dsa.sign(&sk, b"challenge||nonce");
/// assert!(dsa.verify(&vk, b"challenge||nonce", &sig));
/// assert!(!dsa.verify(&vk, b"tampered", &sig));
/// ```
#[derive(Debug, Clone)]
pub struct Dsa {
    params: DsaParams,
}

impl Dsa {
    /// Creates the scheme from domain parameters.
    pub fn new(params: DsaParams) -> Dsa {
        Dsa { params }
    }

    /// Borrows the domain parameters.
    pub fn params(&self) -> &DsaParams {
        &self.params
    }

    /// Key generation with caller-supplied randomness (x uniform in
    /// `[1, q-1]`).
    pub fn keypair<R: RngCore + ?Sized>(&self, rng: &mut R) -> (DsaSigningKey, DsaVerifyingKey) {
        let q_minus_1 = self.params.q.checked_sub(&Natural::one()).expect("q >= 2");
        let x = &random_below(&q_minus_1, rng) + &Natural::one();
        let y = self.params.g.mod_pow(&x, &self.params.p);
        (DsaSigningKey { x }, DsaVerifyingKey { y })
    }
}

impl SignatureScheme for Dsa {
    type SigningKey = DsaSigningKey;
    type VerifyingKey = DsaVerifyingKey;
    type Signature = DsaSignature;

    fn keypair_from_seed(&self, seed: &[u8]) -> (DsaSigningKey, DsaVerifyingKey) {
        let x = self.params.scalar_from_seed(seed, b"fe-dsa-keygen");
        let y = self.params.g.mod_pow(&x, &self.params.p);
        (DsaSigningKey { x }, DsaVerifyingKey { y })
    }

    fn sign(&self, key: &DsaSigningKey, msg: &[u8]) -> DsaSignature {
        let p = &self.params.p;
        let q = &self.params.q;
        let z = self.params.hash_to_scalar(msg);

        // Deterministic nonce: DRBG seeded with (x, H(m)); retry counter in
        // the personalization keeps retries distinct.
        let x_bytes = key.x.to_bytes_be_padded(self.params.scalar_len());
        let digest = Sha256::digest(msg);
        let mut retry = 0u8;
        loop {
            let mut seed = x_bytes.clone();
            seed.extend_from_slice(&digest);
            seed.push(retry);
            let k = self.params.scalar_from_seed(&seed, b"fe-dsa-nonce");
            let r = self.params.g.mod_pow(&k, p).rem_nat(q);
            if r.is_zero() {
                retry = retry.wrapping_add(1);
                continue;
            }
            let k_inv = k.mod_inv(q).expect("k in [1,q-1] is invertible");
            let s = k_inv.mod_mul(&z.mod_add(&key.x.mod_mul(&r, q), q), q);
            if s.is_zero() {
                retry = retry.wrapping_add(1);
                continue;
            }
            return DsaSignature { r, s };
        }
    }

    fn verify(&self, key: &DsaVerifyingKey, msg: &[u8], sig: &DsaSignature) -> bool {
        let p = &self.params.p;
        let q = &self.params.q;
        if sig.r.is_zero() || &sig.r >= q || sig.s.is_zero() || &sig.s >= q {
            return false;
        }
        if key.y.is_zero() || key.y.is_one() || &key.y >= p {
            return false;
        }
        let z = self.params.hash_to_scalar(msg);
        let w = match sig.s.mod_inv(q) {
            Some(w) => w,
            None => return false,
        };
        let u1 = z.mod_mul(&w, q);
        let u2 = sig.r.mod_mul(&w, q);
        let v = self
            .params
            .g
            .mod_pow(&u1, p)
            .mod_mul(&key.y.mod_pow(&u2, p), p)
            .rem_nat(q);
        v == sig.r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheme() -> Dsa {
        Dsa::new(DsaParams::insecure_512().clone())
    }

    #[test]
    fn params_validate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(DsaParams::insecure_512().validate(&mut rng), Ok(()));
    }

    #[test]
    fn param_bits() {
        let (l, n) = DsaParams::insecure_512().bits();
        assert_eq!(l, 512);
        assert_eq!(n, 160);
    }

    #[test]
    fn generator_has_order_q() {
        let params = DsaParams::insecure_512();
        assert!(params.g().mod_pow(params.q(), params.p()).is_one());
        assert!(!params.g().is_one());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let dsa = scheme();
        let (sk, vk) = dsa.keypair_from_seed(b"seed");
        let sig = dsa.sign(&sk, b"message");
        assert!(dsa.verify(&vk, b"message", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let dsa = scheme();
        let (sk, vk) = dsa.keypair_from_seed(b"seed");
        let sig = dsa.sign(&sk, b"message");
        assert!(!dsa.verify(&vk, b"other message", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let dsa = scheme();
        let (sk, _) = dsa.keypair_from_seed(b"seed-1");
        let (_, vk2) = dsa.keypair_from_seed(b"seed-2");
        let sig = dsa.sign(&sk, b"message");
        assert!(!dsa.verify(&vk2, b"message", &sig));
    }

    #[test]
    fn verify_rejects_out_of_range_components() {
        let dsa = scheme();
        let (sk, vk) = dsa.keypair_from_seed(b"seed");
        let sig = dsa.sign(&sk, b"message");
        let bad_r = DsaSignature {
            r: dsa.params().q().clone(),
            s: sig.s().clone(),
        };
        assert!(!dsa.verify(&vk, b"message", &bad_r));
        let zero_s = DsaSignature {
            r: sig.r().clone(),
            s: Natural::zero(),
        };
        assert!(!dsa.verify(&vk, b"message", &zero_s));
    }

    #[test]
    fn keygen_is_deterministic_in_seed() {
        let dsa = scheme();
        let (_, vk1) = dsa.keypair_from_seed(b"same seed");
        let (_, vk2) = dsa.keypair_from_seed(b"same seed");
        assert_eq!(vk1, vk2);
        let (_, vk3) = dsa.keypair_from_seed(b"different seed");
        assert_ne!(vk1, vk3);
    }

    #[test]
    fn signatures_deterministic_per_message() {
        let dsa = scheme();
        let (sk, _) = dsa.keypair_from_seed(b"seed");
        assert_eq!(dsa.sign(&sk, b"m"), dsa.sign(&sk, b"m"));
        assert_ne!(dsa.sign(&sk, b"m1"), dsa.sign(&sk, b"m2"));
    }

    #[test]
    fn random_keypair_works() {
        let dsa = scheme();
        let mut rng = StdRng::seed_from_u64(7);
        let (sk, vk) = dsa.keypair(&mut rng);
        let sig = dsa.sign(&sk, b"hello");
        assert!(dsa.verify(&vk, b"hello", &sig));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let dsa = scheme();
        let (sk, vk) = dsa.keypair_from_seed(b"seed");
        let sig = dsa.sign(&sk, b"message");
        let bytes = sig.to_bytes(dsa.params());
        assert_eq!(bytes.len(), 2 * dsa.params().scalar_len());
        let back = DsaSignature::from_bytes(&bytes, dsa.params()).unwrap();
        assert_eq!(back, sig);
        assert!(dsa.verify(&vk, b"message", &back));
        assert!(DsaSignature::from_bytes(&bytes[1..], dsa.params()).is_none());
    }

    #[test]
    fn verifying_key_bytes_roundtrip() {
        let dsa = scheme();
        let (_, vk) = dsa.keypair_from_seed(b"seed");
        let bytes = vk.to_bytes(dsa.params());
        assert_eq!(DsaVerifyingKey::from_bytes(&bytes), vk);
    }

    #[test]
    fn debug_hides_secret() {
        let dsa = scheme();
        let (sk, _) = dsa.keypair_from_seed(b"seed");
        assert_eq!(format!("{sk:?}"), "DsaSigningKey { .. }");
    }

    #[test]
    fn param_validation_catches_errors() {
        let mut rng = StdRng::seed_from_u64(3);
        let good = DsaParams::insecure_512();
        let bad_g = DsaParams::from_parts(good.p().clone(), good.q().clone(), Natural::one());
        assert_eq!(bad_g.validate(&mut rng), Err(ParamError::BadGenerator));
        let bad_q = DsaParams::from_parts(good.p().clone(), Natural::from(15u64), good.g().clone());
        assert_eq!(bad_q.validate(&mut rng), Err(ParamError::QNotPrime));
    }
}
