//! Error type shared by the coding layers.

use std::error::Error;
use std::fmt;

/// Errors from code construction, encoding and decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeError {
    /// A parameter combination is invalid (e.g. `k <= 0` after choosing
    /// `t`, or a field order too small for the requested length).
    BadParameters,
    /// Input length does not match the code's expectation.
    WrongLength {
        /// Expected number of symbols/bits.
        expected: usize,
        /// Received number of symbols/bits.
        got: usize,
    },
    /// The word is too corrupted: more errors than the code can correct.
    TooManyErrors,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::BadParameters => write!(f, "invalid code parameters"),
            CodeError::WrongLength { expected, got } => {
                write!(f, "wrong input length: expected {expected}, got {got}")
            }
            CodeError::TooManyErrors => write!(f, "too many errors to correct"),
        }
    }
}

impl Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            CodeError::BadParameters.to_string(),
            "invalid code parameters"
        );
        assert_eq!(
            CodeError::WrongLength {
                expected: 7,
                got: 8
            }
            .to_string(),
            "wrong input length: expected 7, got 8"
        );
        assert_eq!(
            CodeError::TooManyErrors.to_string(),
            "too many errors to correct"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CodeError>();
    }
}
