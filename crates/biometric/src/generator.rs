//! Population and template generation matching the paper's experimental
//! setup (Table II: representation range `[-100000, 100000]`, `n` from
//! 1000 to 31000).

use crate::noise::NoiseModel;
use crate::template::Template;
use rand::Rng;
use rand::RngCore;

/// Generates synthetic biometric templates uniformly over a feature range.
///
/// ```rust
/// use fe_biometric::PopulationGenerator;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let gen = PopulationGenerator::new(16, -100, 100);
/// let pop = gen.population(10, &mut rng);
/// assert_eq!(pop.len(), 10);
/// assert!(pop.iter().all(|t| t.dim() == 16 && t.in_range(-100, 100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationGenerator {
    dim: usize,
    min: i64,
    max: i64,
}

impl PopulationGenerator {
    /// Creates a generator for `dim`-dimensional templates with features
    /// uniform in `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max` or `dim == 0`.
    pub fn new(dim: usize, min: i64, max: i64) -> Self {
        assert!(min <= max, "empty feature range");
        assert!(dim > 0, "dimension must be positive");
        PopulationGenerator { dim, min, max }
    }

    /// The paper's Table II setup: features in `[-100000, 100000]`.
    pub fn paper_defaults(dim: usize) -> Self {
        PopulationGenerator::new(dim, -100_000, 100_000)
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Feature range `(min, max)`, inclusive.
    pub fn range(&self) -> (i64, i64) {
        (self.min, self.max)
    }

    /// Draws one uniform template.
    pub fn random_template<R: RngCore + ?Sized>(&self, rng: &mut R) -> Template {
        Template::new(
            (0..self.dim)
                .map(|_| rng.gen_range(self.min..=self.max))
                .collect(),
        )
    }

    /// Draws a population of `count` independent templates (distinct users).
    pub fn population<R: RngCore + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Template> {
        (0..count).map(|_| self.random_template(rng)).collect()
    }

    /// A genuine presentation: the enrolled template plus reading noise.
    pub fn genuine_reading<R: RngCore + ?Sized>(
        &self,
        enrolled: &Template,
        noise: &impl NoiseModel,
        rng: &mut R,
    ) -> Template {
        Template::new(noise.perturb(enrolled.features(), rng))
    }

    /// An impostor presentation: a fresh uniform template unrelated to any
    /// enrolled user.
    pub fn impostor_reading<R: RngCore + ?Sized>(&self, rng: &mut R) -> Template {
        self.random_template(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::UniformNoise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn templates_in_range_and_dim() {
        let mut r = rng();
        let gen = PopulationGenerator::new(100, -50, 75);
        for _ in 0..20 {
            let t = gen.random_template(&mut r);
            assert_eq!(t.dim(), 100);
            assert!(t.in_range(-50, 75));
        }
    }

    #[test]
    fn paper_defaults_range() {
        let gen = PopulationGenerator::paper_defaults(5000);
        assert_eq!(gen.range(), (-100_000, 100_000));
        assert_eq!(gen.dim(), 5000);
    }

    #[test]
    fn population_is_diverse() {
        let mut r = rng();
        let gen = PopulationGenerator::paper_defaults(50);
        let pop = gen.population(20, &mut r);
        for i in 0..pop.len() {
            for j in (i + 1)..pop.len() {
                assert_ne!(pop[i], pop[j], "duplicate templates {i},{j}");
            }
        }
    }

    #[test]
    fn genuine_reading_close_impostor_far() {
        let mut r = rng();
        let gen = PopulationGenerator::paper_defaults(1000);
        let enrolled = gen.random_template(&mut r);
        let noise = UniformNoise::new(100);
        let genuine = gen.genuine_reading(&enrolled, &noise, &mut r);
        let impostor = gen.impostor_reading(&mut r);
        let dev = |a: &Template, b: &Template| {
            a.features()
                .iter()
                .zip(b.features())
                .map(|(x, y)| x.abs_diff(*y))
                .max()
                .unwrap()
        };
        assert!(dev(&enrolled, &genuine) <= 100);
        assert!(dev(&enrolled, &impostor) > 100); // overwhelmingly likely
    }

    #[test]
    #[should_panic(expected = "empty feature range")]
    fn bad_range_panics() {
        PopulationGenerator::new(10, 5, -5);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        PopulationGenerator::new(0, -5, 5);
    }
}
