//! The authentication server (`AS`): record storage, sketch matching,
//! challenge management, response verification.

use crate::messages::{
    challenge_message, EnrollmentRecord, IdentChallenge, IdentOutcome, IdentResponse, SessionId,
    UserId, WireHelper,
};
use crate::params::SystemParams;
use crate::ProtocolError;
use fe_crypto::dsa::{DsaSignature, DsaVerifyingKey};
use fe_crypto::sig::SignatureScheme;
use fe_core::{ScanIndex, SketchIndex};
use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;

/// A stored enrollment record.
#[derive(Debug, Clone)]
struct StoredRecord {
    id: UserId,
    public_key: DsaVerifyingKey,
    helper: WireHelper,
}

/// An outstanding challenge (single-use → replay protection).
#[derive(Debug, Clone)]
struct PendingChallenge {
    record_idx: usize,
    challenge: u64,
}

/// The authentication server of Figs. 1–3.
///
/// Holds only public data: `(ID, pk, P)` per user. Sketch lookup uses the
/// early-abort scan over conditions (1)–(4); the heavy crypto per
/// identification is exactly one signature verification regardless of the
/// number of enrolled users.
#[derive(Debug)]
pub struct AuthenticationServer {
    params: SystemParams,
    /// Slot-stable record storage: revocation leaves a tombstone so
    /// outstanding indices never shift.
    records: Vec<Option<StoredRecord>>,
    by_id: HashMap<UserId, usize>,
    index: ScanIndex,
    pending: HashMap<SessionId, PendingChallenge>,
    next_session: SessionId,
    /// Diagnostic counter: records examined by sketch lookups.
    lookups: u64,
}

impl AuthenticationServer {
    /// Creates an empty server.
    pub fn new(params: SystemParams) -> Self {
        let t = params.sketch().threshold();
        let ka = params.sketch().line().interval_len();
        AuthenticationServer {
            params,
            records: Vec::new(),
            by_id: HashMap::new(),
            index: ScanIndex::new(t, ka),
            pending: HashMap::new(),
            next_session: 1,
            lookups: 0,
        }
    }

    /// The system parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Number of enrolled (non-revoked) users.
    pub fn user_count(&self) -> usize {
        self.by_id.len()
    }

    /// All enrolled helper data, in enrollment order (needed by the
    /// normal-approach baseline, which ships every record to the device).
    pub fn all_helpers(&self) -> Vec<(UserId, WireHelper)> {
        self.records
            .iter()
            .flatten()
            .map(|r| (r.id.clone(), r.helper.clone()))
            .collect()
    }

    /// Full record view — id, stored public key and helper data — in
    /// enrollment order. The normal-approach baseline verifies responses
    /// against these stored keys.
    pub fn enrolled_records(&self) -> Vec<(UserId, DsaVerifyingKey, WireHelper)> {
        self.records
            .iter()
            .flatten()
            .map(|r| (r.id.clone(), r.public_key.clone(), r.helper.clone()))
            .collect()
    }

    /// Visits records by reference in enrollment order, stopping at the
    /// first `Some` returned by the visitor (avoids cloning helper data
    /// in the O(N) baseline).
    pub fn visit_records<T>(
        &self,
        mut visit: impl FnMut(&UserId, &DsaVerifyingKey, &WireHelper) -> Option<T>,
    ) -> Option<T> {
        self.records
            .iter()
            .flatten()
            .find_map(|r| visit(&r.id, &r.public_key, &r.helper))
    }

    /// Revokes a user: the record and its sketch are removed and every
    /// outstanding challenge for the user is cancelled. One of the
    /// paper's motivating problems is that a *biometric* is not revocable
    /// once leaked — but the *enrollment* is: after revocation the stored
    /// helper data is gone and the user can re-enroll, obtaining a fresh
    /// key pair from the same biometric.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownUser`] if the id is not enrolled.
    pub fn revoke(&mut self, id: &str) -> Result<(), ProtocolError> {
        let idx = self
            .by_id
            .remove(id)
            .ok_or_else(|| ProtocolError::UnknownUser(id.to_string()))?;
        self.records[idx] = None;
        self.index.remove(idx);
        self.pending.retain(|_, p| p.record_idx != idx);
        Ok(())
    }

    /// Stores an enrollment record (Fig. 1, final step).
    ///
    /// # Errors
    /// [`ProtocolError::DuplicateUser`] if the id is taken;
    /// [`ProtocolError::Malformed`] if the public key fails to parse.
    pub fn enroll(&mut self, record: EnrollmentRecord) -> Result<(), ProtocolError> {
        if self.by_id.contains_key(&record.id) {
            return Err(ProtocolError::DuplicateUser(record.id));
        }
        if record.public_key.is_empty() {
            return Err(ProtocolError::Malformed("empty public key"));
        }
        let public_key = DsaVerifyingKey::from_bytes(&record.public_key);
        let idx = self.records.len();
        let index_id = self.index.insert(record.helper.sketch.inner.clone());
        debug_assert_eq!(index_id, idx, "index ids must mirror record slots");
        self.by_id.insert(record.id.clone(), idx);
        self.records.push(Some(StoredRecord {
            id: record.id,
            public_key,
            helper: record.helper,
        }));
        Ok(())
    }

    /// Identification phase 1 (Fig. 3): match the probe sketch against
    /// the enrolled records using conditions (1)–(4), and issue a
    /// challenge for the matched record.
    ///
    /// # Errors
    /// [`ProtocolError::NoMatch`] when no record matches (`⊥`).
    pub fn begin_identification<R: RngCore + ?Sized>(
        &mut self,
        probe: &[i64],
        rng: &mut R,
    ) -> Result<IdentChallenge, ProtocolError> {
        self.lookups += 1;
        let record_idx = self.index.lookup(probe).ok_or(ProtocolError::NoMatch)?;
        Ok(self.issue_challenge(record_idx, rng))
    }

    /// Verification phase 1 (the verification-mode protocol): the user
    /// *claims* an identity; the server retrieves that record directly and
    /// issues a challenge — the 1-to-1 path.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownUser`] for unenrolled ids.
    pub fn begin_verification<R: RngCore + ?Sized>(
        &mut self,
        claimed_id: &str,
        rng: &mut R,
    ) -> Result<IdentChallenge, ProtocolError> {
        let record_idx = *self
            .by_id
            .get(claimed_id)
            .ok_or_else(|| ProtocolError::UnknownUser(claimed_id.to_string()))?;
        Ok(self.issue_challenge(record_idx, rng))
    }

    fn issue_challenge<R: RngCore + ?Sized>(
        &mut self,
        record_idx: usize,
        rng: &mut R,
    ) -> IdentChallenge {
        let session = self.next_session;
        self.next_session += 1;
        let challenge: u64 = rng.gen();
        self.pending.insert(
            session,
            PendingChallenge {
                record_idx,
                challenge,
            },
        );
        let record = self.records[record_idx]
            .as_ref()
            .expect("challenges are only issued for live records");
        IdentChallenge {
            session,
            helper: record.helper.clone(),
            challenge,
        }
    }

    /// Phase 2 (both modes): verify the signed `(c, a)` response. The
    /// challenge is consumed whether or not verification succeeds —
    /// a response can never be replayed.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownSession`] for unknown/expired sessions;
    /// [`ProtocolError::Malformed`] if the signature bytes do not parse.
    pub fn finish_identification(
        &mut self,
        response: &IdentResponse,
    ) -> Result<IdentOutcome, ProtocolError> {
        let pending = self
            .pending
            .remove(&response.session)
            .ok_or(ProtocolError::UnknownSession)?;
        // A user can be revoked between challenge and response.
        let record = self.records[pending.record_idx]
            .as_ref()
            .ok_or(ProtocolError::UnknownSession)?;
        let signature = DsaSignature::from_bytes(&response.signature, self.params.dsa_params())
            .ok_or(ProtocolError::Malformed("signature length"))?;
        let msg = challenge_message(response.session, pending.challenge, response.nonce);
        let dsa = self.params.dsa();
        if dsa.verify(&record.public_key, &msg, &signature) {
            Ok(IdentOutcome::Identified(record.id.clone()))
        } else {
            Ok(IdentOutcome::Rejected)
        }
    }

    /// Number of sketch lookups performed (diagnostics).
    pub fn lookup_count(&self) -> u64 {
        self.lookups
    }

    /// Serializes every live record with the wire codec, for durable
    /// storage. Only public data leaves the server — exactly what an
    /// insider adversary could read anyway (Sec. VI-B threat model).
    pub fn export_records(&self) -> Vec<Vec<u8>> {
        self.records
            .iter()
            .flatten()
            .map(|r| {
                crate::wire::encode(&crate::wire::Message::Enroll(EnrollmentRecord {
                    id: r.id.clone(),
                    public_key: r.public_key.to_bytes(self.params.dsa_params()),
                    helper: r.helper.clone(),
                }))
            })
            .collect()
    }

    /// Restores records exported by [`AuthenticationServer::export_records`]
    /// into this server, returning how many were imported.
    ///
    /// # Errors
    /// [`ProtocolError::Malformed`] on undecodable blobs (import stops at
    /// the first bad blob); [`ProtocolError::DuplicateUser`] if an id is
    /// already enrolled.
    pub fn import_records(&mut self, blobs: &[Vec<u8>]) -> Result<usize, ProtocolError> {
        let mut imported = 0;
        for blob in blobs {
            match crate::wire::decode(blob)? {
                crate::wire::Message::Enroll(record) => {
                    self.enroll(record)?;
                    imported += 1;
                }
                _ => return Err(ProtocolError::Malformed("expected enrollment record")),
            }
        }
        Ok(imported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BiometricDevice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(users: usize) -> (BiometricDevice, AuthenticationServer, Vec<Vec<i64>>, StdRng) {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut server = AuthenticationServer::new(params.clone());
        let mut rng = StdRng::seed_from_u64(77_000 + users as u64);
        let mut bios = Vec::new();
        for u in 0..users {
            let bio = params.sketch().line().random_vector(48, &mut rng);
            let record = device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap();
            server.enroll(record).unwrap();
            bios.push(bio);
        }
        (device, server, bios, rng)
    }

    fn noisy(bio: &[i64], rng: &mut StdRng) -> Vec<i64> {
        use rand::Rng;
        bio.iter().map(|&x| x + rng.gen_range(-100i64..=100)).collect()
    }

    #[test]
    fn full_identification_happy_path() {
        let (device, mut server, bios, mut rng) = setup(10);
        for (u, bio) in bios.iter().enumerate() {
            let reading = noisy(bio, &mut rng);
            let probe = device.probe_sketch(&reading, &mut rng).unwrap();
            let chal = server.begin_identification(&probe, &mut rng).unwrap();
            let resp = device.respond(&reading, &chal, &mut rng).unwrap();
            let outcome = server.finish_identification(&resp).unwrap();
            assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
        }
    }

    #[test]
    fn impostor_gets_no_match() {
        let (device, mut server, _bios, mut rng) = setup(5);
        let stranger = server.params().sketch().line().random_vector(48, &mut rng);
        let probe = device.probe_sketch(&stranger, &mut rng).unwrap();
        assert_eq!(
            server.begin_identification(&probe, &mut rng).unwrap_err(),
            ProtocolError::NoMatch
        );
    }

    #[test]
    fn verification_mode_with_claimed_identity() {
        let (device, mut server, bios, mut rng) = setup(5);
        let reading = noisy(&bios[3], &mut rng);
        let chal = server.begin_verification("user-3", &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap().identity(),
            Some("user-3")
        );
        // Unknown identity is rejected upfront.
        assert!(matches!(
            server.begin_verification("nobody", &mut rng),
            Err(ProtocolError::UnknownUser(_))
        ));
    }

    #[test]
    fn wrong_user_cannot_answer_verification_challenge() {
        let (device, mut server, bios, mut rng) = setup(5);
        // Claim user-2 but present user-4's biometric: Rep fails on the
        // device (wrong helper data).
        let chal = server.begin_verification("user-2", &mut rng).unwrap();
        let reading = noisy(&bios[4], &mut rng);
        assert!(device.respond(&reading, &chal, &mut rng).is_err());
    }

    #[test]
    fn duplicate_enrollment_rejected() {
        let (device, mut server, bios, mut rng) = setup(2);
        let record = device.enroll("user-0", &bios[0], &mut rng).unwrap();
        assert!(matches!(
            server.enroll(record),
            Err(ProtocolError::DuplicateUser(_))
        ));
    }

    #[test]
    fn replayed_response_rejected() {
        let (device, mut server, bios, mut rng) = setup(3);
        let reading = noisy(&bios[1], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert!(server.finish_identification(&resp).unwrap().is_identified());
        // Same response again: the session is consumed.
        assert_eq!(
            server.finish_identification(&resp).unwrap_err(),
            ProtocolError::UnknownSession
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let (device, mut server, bios, mut rng) = setup(3);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let mut resp = device.respond(&reading, &chal, &mut rng).unwrap();
        resp.signature[3] ^= 0xff;
        assert_eq!(
            server.finish_identification(&resp).unwrap(),
            IdentOutcome::Rejected
        );
    }

    #[test]
    fn tampered_nonce_rejected() {
        let (device, mut server, bios, mut rng) = setup(3);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let mut resp = device.respond(&reading, &chal, &mut rng).unwrap();
        resp.nonce ^= 1; // signature no longer covers (c, a)
        assert_eq!(
            server.finish_identification(&resp).unwrap(),
            IdentOutcome::Rejected
        );
    }

    #[test]
    fn revocation_removes_user() {
        let (device, mut server, bios, mut rng) = setup(3);
        assert_eq!(server.user_count(), 3);
        server.revoke("user-1").unwrap();
        assert_eq!(server.user_count(), 2);
        // user-1 can no longer be identified…
        let reading = noisy(&bios[1], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        assert_eq!(
            server.begin_identification(&probe, &mut rng).unwrap_err(),
            ProtocolError::NoMatch
        );
        // …or verified by claim…
        assert!(matches!(
            server.begin_verification("user-1", &mut rng),
            Err(ProtocolError::UnknownUser(_))
        ));
        // …while other users are untouched.
        let reading2 = noisy(&bios[2], &mut rng);
        let probe2 = device.probe_sketch(&reading2, &mut rng).unwrap();
        assert!(server.begin_identification(&probe2, &mut rng).is_ok());
        // Revoking twice fails.
        assert!(server.revoke("user-1").is_err());
    }

    #[test]
    fn revocation_cancels_pending_challenges() {
        let (device, mut server, bios, mut rng) = setup(2);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        server.revoke("user-0").unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap_err(),
            ProtocolError::UnknownSession
        );
    }

    #[test]
    fn reenrollment_after_revocation() {
        let (device, mut server, bios, mut rng) = setup(2);
        server.revoke("user-0").unwrap();
        // Same biometric, same id, fresh enrollment → fresh key pair.
        let record = device.enroll("user-0", &bios[0], &mut rng).unwrap();
        server.enroll(record).unwrap();
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap().identity(),
            Some("user-0")
        );
    }

    #[test]
    fn export_import_roundtrip_preserves_identification() {
        let (device, mut server, bios, mut rng) = setup(4);
        server.revoke("user-2").unwrap(); // tombstones are not exported
        let blobs = server.export_records();
        assert_eq!(blobs.len(), 3);

        // Cold restart: a fresh server imports the records.
        let mut restored = AuthenticationServer::new(server.params().clone());
        assert_eq!(restored.import_records(&blobs).unwrap(), 3);
        assert_eq!(restored.user_count(), 3);

        // Identification still works against the restored state.
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = restored.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            restored.finish_identification(&resp).unwrap().identity(),
            Some("user-0")
        );
        // The revoked user stays revoked.
        let reading2 = noisy(&bios[2], &mut rng);
        let probe2 = device.probe_sketch(&reading2, &mut rng).unwrap();
        assert!(restored.begin_identification(&probe2, &mut rng).is_err());
    }

    #[test]
    fn import_rejects_garbage_and_duplicates() {
        let (_device, mut server, _bios, _rng) = setup(2);
        let blobs = server.export_records();
        let mut fresh = AuthenticationServer::new(server.params().clone());
        fresh.import_records(&blobs).unwrap();
        // Importing the same records again duplicates ids.
        assert!(matches!(
            fresh.import_records(&blobs),
            Err(ProtocolError::DuplicateUser(_))
        ));
        // Garbage bytes are rejected cleanly.
        assert!(matches!(
            server.import_records(&[vec![1, 2, 3]]),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_session_rejected() {
        let (_device, mut server, _bios, _rng) = setup(1);
        let resp = IdentResponse {
            session: 999,
            signature: vec![0; 40],
            nonce: 7,
        };
        assert_eq!(
            server.finish_identification(&resp).unwrap_err(),
            ProtocolError::UnknownSession
        );
    }
}
