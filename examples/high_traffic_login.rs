//! High-traffic passwordless login — the request scheduler end to end.
//!
//! A fleet of login devices hits one authentication service
//! concurrently, each presenting *only* a biometric. Instead of every
//! request paying its own sweep over the enrolled population, the
//! [`ScheduledServer`] coalesces concurrent requests into adaptive
//! micro-batches: one pass over each shard's columnar arena answers a
//! whole batch (flushed when it fills or when the oldest request has
//! waited out the batch window), and a bounded admission queue sheds
//! excess load with `Overloaded` instead of queueing without bound.
//!
//! The demo:
//! 1. enrolls a population on a 2-shard server behind the scheduler,
//! 2. storms it with concurrent genuine logins (plus one impostor),
//!    completing the full protocol — probe → challenge → signed
//!    response → verification,
//! 3. prints the scheduler's own telemetry: batch sizes, queue depth,
//!    scheduling latency, flush reasons,
//! 4. demonstrates backpressure with a deliberately tiny queue.
//!
//! Run with: `cargo run --release --example high_traffic_login`

use fuzzy_id::core::EpochIndex;
use fuzzy_id::protocol::scheduler::{ScheduledServer, SchedulerConfig};
use fuzzy_id::protocol::{BiometricDevice, ProtocolError, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(7);

    // A 2-shard server behind the scheduler: micro-batches of up to 8,
    // flushed after at most 2 ms of coalescing.
    let scheduler: ScheduledServer<EpochIndex> = ScheduledServer::scan(
        params.clone(),
        2,
        SchedulerConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 256,
            ..SchedulerConfig::default()
        },
    );

    let users = 32;
    let dim = 64;
    println!("enrolling {users} users (n = {dim} features each)…");
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(dim, &mut rng);
        scheduler
            .server()
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng)?)?;
        bios.push(bio);
    }

    // The login storm: 8 concurrent clients, each a device completing
    // the full identification protocol for a few users.
    let clients = 8usize;
    let logins_per_client = 4usize;
    println!("login storm: {clients} concurrent clients × {logins_per_client} logins…");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let scheduler = &scheduler;
            let device = device.clone();
            let bios = &bios;
            let params = params.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                for l in 0..logins_per_client {
                    let u = (c * logins_per_client + l) % bios.len();
                    let reading: Vec<i64> = bios[u]
                        .iter()
                        .map(|&x| x + rng.gen_range(-80i64..=80))
                        .collect();
                    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                    // Phase 1 goes through the scheduler (coalesced);
                    // phase 2 hits the server directly.
                    let chal = scheduler.identify(probe).unwrap();
                    let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                    let outcome = scheduler.server().finish_identification(&resp).unwrap();
                    assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                }
                // One impostor per client: sheds as NoMatch, not a panic.
                let stranger = params.sketch().line().random_vector(dim, &mut rng);
                let probe = device.probe_sketch(&stranger, &mut rng).unwrap();
                assert!(matches!(
                    scheduler.identify(probe),
                    Err(ProtocolError::NoMatch)
                ));
            });
        }
    });
    let elapsed = start.elapsed();
    let total = clients * (logins_per_client + 1);
    println!(
        "  {} identifications in {:.1?} ({:.0} req/s)",
        total,
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );

    // The scheduler's own telemetry.
    let m = scheduler.metrics();
    let latency = m.latency_us.snapshot();
    let batch = m.batch_size.snapshot();
    let depth = m.queue_depth.snapshot();
    println!("scheduler telemetry:");
    println!(
        "  admitted {} / shed {}; flushes: {} on size, {} on deadline",
        m.admitted(),
        m.shed(),
        m.size_flushes(),
        m.deadline_flushes()
    );
    println!(
        "  batch size: mean {:.1}, max {}; queue depth p99 {}",
        batch.mean(),
        batch.max,
        depth.p99
    );
    println!(
        "  scheduling latency: p50 ≤ {} µs, p99 ≤ {} µs, max {} µs",
        latency.p50, latency.p99, latency.max
    );
    assert_eq!(m.admitted(), total as u64);
    assert_eq!(m.shed(), 0);

    // Backpressure demo: a scheduler with a 2-slot queue and a long
    // batch window. Submissions beyond the queue capacity are shed
    // immediately with `Overloaded` — the server never builds an
    // unbounded backlog.
    println!("backpressure: flooding a 2-slot admission queue…");
    let tiny: ScheduledServer<EpochIndex> = ScheduledServer::scan(
        params.clone(),
        1,
        SchedulerConfig {
            max_batch: 64,
            // Long enough that a scheduling stall on a loaded 1-CPU CI
            // runner cannot let the worker drain the queue before the
            // third submit lands (the deadline anchors at t1's
            // admission).
            max_delay: Duration::from_millis(1500),
            queue_capacity: 2,
            workers: 1,
            ..SchedulerConfig::default()
        },
    );
    tiny.server()
        .enroll(device.enroll("lone-user", &bios[0], &mut rng)?)?;
    let probe = device.probe_sketch(&bios[0], &mut rng)?;
    let t1 = tiny.submit(probe.clone())?;
    let t2 = tiny.submit(probe.clone())?;
    let refused = tiny.submit(probe.clone());
    assert!(matches!(refused, Err(ProtocolError::Overloaded)));
    println!(
        "  3rd concurrent request shed with: {}",
        refused.unwrap_err()
    );
    // The queued two still complete (deadline flush), and admission
    // re-opens once the queue drains.
    t1.wait()?;
    t2.wait()?;
    tiny.identify(probe)?;
    println!("  queue drained; admission re-opened");
    println!("high-traffic login demo: OK");
    Ok(())
}
