//! Integration tests for the classical baselines on realistic synthetic
//! biometrics: code-offset over iris-style bit strings, fuzzy vault over
//! minutiae-style feature sets, and a head-to-head FAR/FRR comparison
//! with the paper's Chebyshev construction.

use fuzzy_id::biometric::NoiseModel;
use fuzzy_id::biometric::{measure_error_rates, IrisCodeModel, PopulationGenerator, UniformNoise};
use fuzzy_id::core::baselines::{BinaryFuzzyExtractor, FuzzyVault};
use fuzzy_id::core::{ChebyshevSketch, FuzzyExtractor};
use fuzzy_id::ecc::Bch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

#[test]
fn code_offset_on_iris_codes() {
    let mut rng = StdRng::seed_from_u64(20);
    // BCH(1023, ·, 25) tolerates 25 flips; 1% flip rate → ~10 expected.
    let fe = BinaryFuzzyExtractor::new(Bch::new(10, 25).unwrap(), 32);
    let model = IrisCodeModel::new(fe.sketcher().input_len(), 0.01);

    for trial in 0..5 {
        let enrolled = model.random_code(&mut rng);
        let (key, helper) = fe.generate(&enrolled, &mut rng).unwrap();
        let reading = model.genuine_reading(&enrolled, &mut rng);
        let reproduced = fe.reproduce(&reading, &helper).unwrap();
        assert_eq!(reproduced, key, "trial {trial}");
        // An unrelated iris never reproduces the key.
        let impostor = model.impostor_reading(&mut rng);
        assert!(fe.reproduce(&impostor, &helper).is_err());
    }
}

#[test]
fn code_offset_error_rates() {
    let mut rng = StdRng::seed_from_u64(21);
    let fe = BinaryFuzzyExtractor::new(Bch::new(10, 25).unwrap(), 32);
    let model = IrisCodeModel::new(fe.sketcher().input_len(), 0.015);
    let enrolled = model.random_code(&mut rng);
    let (key, helper) = fe.generate(&enrolled, &mut rng).unwrap();

    let mut g_rng = StdRng::seed_from_u64(22);
    let mut i_rng = StdRng::seed_from_u64(23);
    let rates = measure_error_rates(
        40,
        40,
        || {
            let reading = model.genuine_reading(&enrolled, &mut g_rng);
            fe.reproduce(&reading, &helper).is_ok_and(|k| k == key)
        },
        || {
            let reading = model.impostor_reading(&mut i_rng);
            fe.reproduce(&reading, &helper).is_ok()
        },
    );
    // 1.5% of 1023 ≈ 15 expected flips, t = 25 → overwhelming acceptance.
    assert!(rates.frr < 0.10, "FRR too high: {}", rates.frr);
    assert_eq!(rates.far, 0.0, "FAR must be zero at this distance");
}

#[test]
fn fuzzy_vault_on_minutiae_sets() {
    let mut rng = StdRng::seed_from_u64(24);
    let vault_scheme = FuzzyVault::new(8, 6, 160).unwrap();
    // A fingerprint's minutiae: ~30 feature points out of 256 positions.
    let enrolled: BTreeSet<u16> = {
        let mut s = BTreeSet::new();
        while s.len() < 30 {
            s.insert(rng.gen_range(0..256));
        }
        s
    };
    let secret: Vec<u16> = (0..6).map(|_| rng.gen_range(0..256)).collect();
    let vault = vault_scheme.lock(&enrolled, &secret, &mut rng).unwrap();

    // Genuine reading: drop 4 minutiae, gain 4 spurious ones.
    let mut reading = enrolled.clone();
    let dropped: Vec<u16> = reading.iter().copied().take(4).collect();
    for d in dropped {
        reading.remove(&d);
    }
    while reading.len() < 30 {
        reading.insert(rng.gen_range(0..256));
    }
    assert_eq!(vault_scheme.unlock(&vault, &reading).unwrap(), secret);

    // Impostor: unrelated minutiae set.
    let impostor: BTreeSet<u16> = {
        let mut s = BTreeSet::new();
        while s.len() < 30 {
            s.insert(rng.gen_range(0..256));
        }
        s
    };
    match vault_scheme.unlock(&vault, &impostor) {
        Err(_) => {}
        Ok(got) => assert_ne!(got, secret, "impostor unlocked the vault"),
    }
}

#[test]
fn chebyshev_error_rates_match_theory() {
    // With bounded-uniform noise ≤ t the FRR is exactly zero, and the FAR
    // is bounded by the false-close probability (astronomically small at
    // n = 300).
    let mut rng = StdRng::seed_from_u64(25);
    let fe = FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32);
    let gen = PopulationGenerator::paper_defaults(300);
    let noise = UniformNoise::new(100);
    let enrolled = gen.random_template(&mut rng).into_features();
    let (key, helper) = fe.generate(&enrolled, &mut rng).unwrap();

    let mut g_rng = StdRng::seed_from_u64(26);
    let mut i_rng = StdRng::seed_from_u64(27);
    let rates = measure_error_rates(
        50,
        50,
        || {
            let reading = noise.perturb(&enrolled, &mut g_rng);
            fe.reproduce(&reading, &helper).is_ok_and(|k| k == key)
        },
        || {
            let reading = gen.random_template(&mut i_rng).into_features();
            fe.reproduce(&reading, &helper).is_ok()
        },
    );
    assert_eq!(rates.frr, 0.0);
    assert_eq!(rates.far, 0.0);
}

#[test]
fn chebyshev_frr_grows_with_unbounded_noise() {
    // Gaussian noise with sigma near t: some readings exceed the
    // threshold in at least one of many coordinates → nonzero FRR. This
    // documents why the paper's bounded-noise evaluation model matters.
    use fuzzy_id::biometric::GaussianNoise;
    let mut rng = StdRng::seed_from_u64(28);
    let fe = FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32);
    let gen = PopulationGenerator::paper_defaults(1000);
    let noise = GaussianNoise::new(40.0, 400); // clip beyond t = 100
    let enrolled = gen.random_template(&mut rng).into_features();
    let (_, helper) = fe.generate(&enrolled, &mut rng).unwrap();

    let mut g_rng = StdRng::seed_from_u64(29);
    let rates = measure_error_rates(
        30,
        0,
        || {
            let reading = noise.perturb(&enrolled, &mut g_rng);
            fe.reproduce(&reading, &helper).is_ok()
        },
        || false,
    );
    // With 1000 coordinates at sigma=40, some coordinate exceeds 100
    // (2.5 sigma) with probability ≈ 1 per reading.
    assert!(rates.frr > 0.5, "expected high FRR, got {}", rates.frr);
}
